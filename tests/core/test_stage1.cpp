#include "core/stage1.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/telemetry.h"

namespace tapo::core {
namespace {

TEST(Stage1, FeasibleOnGeneratedScenario) {
  const auto scenario = test::make_small_scenario(31, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result result = solver.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.objective, 0.0);
  EXPECT_GT(result.lp_solves, 0u);
  EXPECT_EQ(result.node_core_power_kw.size(), scenario.dc.num_nodes());
}

TEST(Stage1, RespectsPowerBudget) {
  const auto scenario = test::make_small_scenario(32, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result result = solver.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.compute_power_kw + result.crac_power_kw,
            scenario.dc.p_const_kw + 1e-6);
}

TEST(Stage1, NodePowersWithinPhysicalRange) {
  const auto scenario = test::make_small_scenario(33, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result result = solver.solve();
  ASSERT_TRUE(result.feasible);
  for (std::size_t j = 0; j < scenario.dc.num_nodes(); ++j) {
    const auto& spec = scenario.dc.node_type(j);
    EXPECT_GE(result.node_core_power_kw[j], -1e-9);
    EXPECT_LE(result.node_core_power_kw[j],
              spec.cores_per_node() * spec.core_power_kw(0) + 1e-9);
  }
}

TEST(Stage1, ThermallyFeasibleAtSolution) {
  const auto scenario = test::make_small_scenario(34, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result result = solver.solve();
  ASSERT_TRUE(result.feasible);
  // Reconstruct total node powers and check the actual steady state.
  std::vector<double> node_power = result.node_core_power_kw;
  for (std::size_t j = 0; j < node_power.size(); ++j) {
    node_power[j] += scenario.dc.node_type(j).base_power_kw();
  }
  EXPECT_TRUE(model.within_redlines(model.solve(result.crac_out_c, node_power)));
}

TEST(Stage1, InfeasibleWhenBudgetBelowBasePower) {
  auto scenario = test::make_small_scenario(35, 6, 1);
  scenario.dc.p_const_kw = scenario.dc.total_base_power_kw() * 0.5;
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  EXPECT_FALSE(solver.solve().feasible);
}

TEST(Stage1, LargerBudgetNeverHurts) {
  auto scenario = test::make_small_scenario(36, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result tight = solver.solve();
  scenario.dc.p_const_kw *= 1.2;
  const Stage1Result loose = solver.solve();
  ASSERT_TRUE(tight.feasible && loose.feasible);
  EXPECT_GE(loose.objective, tight.objective - 1e-6);
}

TEST(Stage1, SolveAtMatchesSearchBest) {
  const auto scenario = test::make_small_scenario(37, 6, 1);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  Stage1Options options;
  const Stage1Result result = solver.solve(options);
  ASSERT_TRUE(result.feasible);
  const auto at = solver.solve_at(result.crac_out_c, options.psi);
  ASSERT_TRUE(at.feasible);
  EXPECT_NEAR(at.objective, result.objective, 1e-9);
}

TEST(Stage1, ObjectiveBudgetSaturation) {
  // An oversubscribed data center leaves no slack in the budget: the LP
  // should use (almost) all of Pconst.
  const auto scenario = test::make_small_scenario(38, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  const Stage1Result result = solver.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.compute_power_kw + result.crac_power_kw,
            0.98 * scenario.dc.p_const_kw);
}

TEST(Stage1, FullGridAgreesWithDefaultSearchApproximately) {
  const auto scenario = test::make_small_scenario(39, 6, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  Stage1Options fast;
  Stage1Options grid;
  grid.full_grid = true;
  const auto a = solver.solve(fast);
  const auto b = solver.solve(grid);
  ASSERT_TRUE(a.feasible && b.feasible);
  // Both are heuristic searches over the same LP family; they must land
  // within a few percent of each other.
  EXPECT_NEAR(a.objective, b.objective, 0.05 * std::max(a.objective, b.objective));
}

TEST(Stage1, TelemetryDoesNotChangeTheSolution) {
  // Telemetry is a pure observer: attaching a registry must leave every
  // output bit-identical, and the registry's counters must agree with the
  // result's own bookkeeping.
  const auto scenario = test::make_small_scenario(41, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);

  Stage1Options plain;
  const Stage1Result without = solver.solve(plain);

  util::telemetry::Registry registry;
  Stage1Options observed;
  observed.telemetry = &registry;
  const Stage1Result with = solver.solve(observed);

  ASSERT_TRUE(without.feasible && with.feasible);
  EXPECT_EQ(with.objective, without.objective);  // bit-identical, not NEAR
  EXPECT_EQ(with.crac_out_c, without.crac_out_c);
  EXPECT_EQ(with.compute_power_kw, without.compute_power_kw);
  EXPECT_EQ(with.crac_power_kw, without.crac_power_kw);
  EXPECT_EQ(with.lp_solves, without.lp_solves);
  EXPECT_EQ(with.node_core_power_kw, without.node_core_power_kw);

  EXPECT_EQ(registry.counter_value("stage1.solves"), 1u);
  EXPECT_EQ(registry.counter_value("stage1.lp_solves"), with.lp_solves);
  EXPECT_EQ(registry.gauge_value("stage1.best_objective"), with.objective);
  EXPECT_EQ(registry.timer_stats("stage1.solve").count, 1u);
  EXPECT_GT(registry.counter_value("stage1.sweep_rounds"), 0u);
  // One best-objective point per sweep round.
  EXPECT_EQ(registry.series_values("stage1.best_objective_by_round").size(),
            registry.counter_value("stage1.sweep_rounds"));
}

TEST(Stage1, IterationCapReportsResourceExhausted) {
  // With a 1-iteration LP cap every sweep solve hits IterLimit; the result
  // must say "resources ran out", not masquerade as thermal infeasibility.
  const auto scenario = test::make_small_scenario(42, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  Stage1Options capped;
  capped.lp.max_iterations = 1;
  const Stage1Result result = solver.solve(capped);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.status.code(), util::StatusCode::kResourceExhausted);
}

TEST(Stage1, EngineAndThreadCountDoNotChangeThePlan) {
  // The published plan must be bit-identical across LP engines, sweep thread
  // counts, and warm-start chaining on/off: the sweep only *selects* a
  // setpoint, and the final re-solve always runs the Dense oracle cold.
  const auto scenario = test::make_small_scenario(43, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);

  const Stage1Result reference = solver.solve();
  ASSERT_TRUE(reference.feasible);

  std::vector<Stage1Options> variants(6);
  variants[0].lp.engine = solver::LpEngine::Dense;
  variants[1].threads = 1;
  variants[2].threads = 4;
  variants[3].grid.warm_chain = 1;   // chaining disabled
  variants[4].lp_session = false;    // per-point rebuild instead of sessions
  variants[5].lp.ft_updates = false; // legacy eta file instead of FT updates
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Stage1Result got = solver.solve(variants[i]);
    ASSERT_TRUE(got.feasible) << "variant " << i;
    EXPECT_EQ(got.objective, reference.objective) << "variant " << i;
    EXPECT_EQ(got.crac_out_c, reference.crac_out_c) << "variant " << i;
    EXPECT_EQ(got.node_core_power_kw, reference.node_core_power_kw)
        << "variant " << i;
    EXPECT_EQ(got.compute_power_kw, reference.compute_power_kw) << "variant " << i;
  }
}

TEST(Stage1, SessionSweepIsBitIdenticalAcrossThreadCounts) {
  // The persistent-session sweep (the default) holds one resident LP per
  // warm chain. Chains are a pure function of the point sequence, so the
  // published plan must stay bit-identical for any worker count, and must
  // match the session-free rebuild-per-point sweep.
  const auto scenario = test::make_small_scenario(45, 12, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);

  Stage1Options no_session;
  no_session.lp_session = false;
  const Stage1Result reference = solver.solve(no_session);
  ASSERT_TRUE(reference.feasible);

  // Both factor-maintenance paths (in-place Forrest–Tomlin and the legacy
  // eta file) must publish the reference plan at every thread count.
  for (const bool ft : {true, false}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      SCOPED_TRACE(testing::Message() << "ft=" << ft << " threads=" << threads);
      Stage1Options with_session;
      with_session.lp_session = true;
      with_session.threads = threads;
      with_session.lp.ft_updates = ft;
      const Stage1Result got = solver.solve(with_session);
      ASSERT_TRUE(got.feasible);
      EXPECT_EQ(got.objective, reference.objective);
      EXPECT_EQ(got.crac_out_c, reference.crac_out_c);
      EXPECT_EQ(got.node_core_power_kw, reference.node_core_power_kw);
      EXPECT_EQ(got.compute_power_kw, reference.compute_power_kw);
      EXPECT_EQ(got.crac_power_kw, reference.crac_power_kw);
    }
  }
}

TEST(Stage1, PricingRuleDoesNotChangeThePlan) {
  // The pricing rule only reorders the sweep's pivots; selection is by
  // objective and the final re-solve at the winner runs the Dense oracle
  // cold, so the published plan must stay bit-identical across all three
  // rules — with and without sessions, at every worker count.
  const auto scenario = test::make_small_scenario(46, 11, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);

  Stage1Options dantzig;
  dantzig.lp.pricing = solver::LpPricing::Dantzig;
  const Stage1Result reference = solver.solve(dantzig);
  ASSERT_TRUE(reference.feasible);

  for (const solver::LpPricing pricing :
       {solver::LpPricing::Devex, solver::LpPricing::PartialDevex}) {
    for (const bool session : {true, false}) {
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        SCOPED_TRACE(testing::Message()
                     << "pricing=" << solver::to_string(pricing)
                     << " session=" << session << " threads=" << threads);
        Stage1Options options;
        options.lp.pricing = pricing;
        options.lp_session = session;
        options.threads = threads;
        const Stage1Result got = solver.solve(options);
        ASSERT_TRUE(got.feasible);
        EXPECT_EQ(got.objective, reference.objective);
        EXPECT_EQ(got.crac_out_c, reference.crac_out_c);
        EXPECT_EQ(got.node_core_power_kw, reference.node_core_power_kw);
        EXPECT_EQ(got.compute_power_kw, reference.compute_power_kw);
        EXPECT_EQ(got.crac_power_kw, reference.crac_power_kw);
      }
    }
  }
}

TEST(Stage1, WarmSeedDoesNotChangeThePlan) {
  const auto scenario = test::make_small_scenario(44, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);

  const Stage1Result cold = solver.solve();
  ASSERT_TRUE(cold.feasible);
  ASSERT_FALSE(cold.basis.empty());

  Stage1Options seeded;
  seeded.warm_seed = &cold.basis;
  const Stage1Result warm = solver.solve(seeded);
  ASSERT_TRUE(warm.feasible);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_EQ(warm.crac_out_c, cold.crac_out_c);
  EXPECT_EQ(warm.node_core_power_kw, cold.node_core_power_kw);
}

TEST(Stage1, PsiChangesSelection) {
  const auto scenario = test::make_small_scenario(40, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const Stage1Solver solver(scenario.dc, model);
  Stage1Options p25;
  p25.psi = 25.0;
  Stage1Options p50;
  p50.psi = 50.0;
  const auto a = solver.solve(p25);
  const auto b = solver.solve(p50);
  ASSERT_TRUE(a.feasible && b.feasible);
  // The relaxed objectives are averages over different task-type subsets:
  // psi=25 uses only the most efficient types, so its relaxed bound is at
  // least as high.
  EXPECT_GE(a.objective, b.objective - 1e-6);
}

}  // namespace
}  // namespace tapo::core
