#include "core/stage2.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace tapo::core {
namespace {

using test::make_tiny_dc;

TEST(Stage2, ZeroBudgetTurnsEverythingOff) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const auto result = convert_power_to_pstates(dc, {0.0, 0.0});
  for (std::size_t k = 0; k < dc.total_cores(); ++k) {
    EXPECT_EQ(result.core_pstate[k], dc.node_types[dc.core_type(k)].off_state());
  }
  EXPECT_DOUBLE_EQ(result.node_core_power_kw[0], 0.0);
}

TEST(Stage2, FullBudgetRunsEverythingAtP0) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  std::vector<double> budget(2);
  for (std::size_t j = 0; j < 2; ++j) {
    const auto& spec = dc.node_type(j);
    budget[j] = spec.cores_per_node() * spec.core_power_kw(0);
  }
  const auto result = convert_power_to_pstates(dc, budget);
  for (std::size_t k = 0; k < dc.total_cores(); ++k) {
    EXPECT_EQ(result.core_pstate[k], 0u);
  }
  EXPECT_NEAR(result.node_core_power_kw[0], budget[0], 1e-12);
}

TEST(Stage2, NeverExceedsBudget) {
  const auto dc = make_tiny_dc({0, 1, 0}, 1);
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> budget(3);
    for (std::size_t j = 0; j < 3; ++j) {
      const auto& spec = dc.node_type(j);
      budget[j] = rng.uniform(0.0, spec.cores_per_node() * spec.core_power_kw(0));
    }
    const auto result = convert_power_to_pstates(dc, budget);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_LE(result.node_core_power_kw[j], budget[j] + 1e-9);
    }
  }
}

TEST(Stage2, ActualPowerMatchesAssignedStates) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const auto result = convert_power_to_pstates(dc, {0.25, 0.4});
  for (std::size_t j = 0; j < 2; ++j) {
    const auto& spec = dc.node_type(j);
    double power = 0.0;
    for (std::size_t c = 0; c < spec.cores_per_node(); ++c) {
      power += spec.core_power_kw(result.core_pstate[dc.core_offset(j) + c]);
    }
    EXPECT_NEAR(power, result.node_core_power_kw[j], 1e-12);
  }
}

TEST(Stage2, UsesAtMostTwoAdjacentStatesPerNode) {
  // Even shares land between two adjacent P-states; the paper's procedure
  // staggers cores between exactly those two.
  const auto dc = make_tiny_dc({0}, 1);
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto& spec = dc.node_type(0);
    const double budget =
        rng.uniform(0.0, spec.cores_per_node() * spec.core_power_kw(0));
    const auto result = convert_power_to_pstates(dc, {budget});
    std::size_t lo = spec.off_state(), hi = 0;
    for (std::size_t c = 0; c < spec.cores_per_node(); ++c) {
      lo = std::min(lo, result.core_pstate[c]);
      hi = std::max(hi, result.core_pstate[c]);
    }
    EXPECT_LE(hi - lo, 1u) << "budget " << budget;
  }
}

TEST(Stage2, PowerGapBelowOneStateStep) {
  // The conversion loses at most one P-state step of power per node.
  const auto dc = make_tiny_dc({0}, 1);
  const auto& spec = dc.node_type(0);
  double max_step = 0.0;
  for (std::size_t k = 0; k + 1 <= spec.num_active_pstates(); ++k) {
    const double lower =
        (k + 1 == spec.num_active_pstates()) ? 0.0 : spec.core_power_kw(k + 1);
    max_step = std::max(max_step, spec.core_power_kw(k) - lower);
  }
  util::Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const double budget =
        rng.uniform(0.0, spec.cores_per_node() * spec.core_power_kw(0));
    const auto result = convert_power_to_pstates(dc, {budget});
    EXPECT_LE(budget - result.node_core_power_kw[0], max_step + 1e-9);
  }
}

TEST(Stage2, ExactPStatePowerIsPreserved) {
  // A budget of exactly n * pi_1 should produce all cores in P-state 1.
  const auto dc = make_tiny_dc({0}, 1);
  const auto& spec = dc.node_type(0);
  const double budget = spec.cores_per_node() * spec.core_power_kw(1);
  const auto result = convert_power_to_pstates(dc, {budget});
  for (std::size_t c = 0; c < spec.cores_per_node(); ++c) {
    EXPECT_EQ(result.core_pstate[c], 1u);
  }
  EXPECT_NEAR(result.node_core_power_kw[0], budget, 1e-9);
}

TEST(Stage2, MixedNodeTypesHandledIndependently) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const auto& hp = dc.node_types[0];
  const auto& nec = dc.node_types[1];
  const auto result = convert_power_to_pstates(
      dc, {hp.cores_per_node() * hp.core_power_kw(2),
           nec.cores_per_node() * nec.core_power_kw(1)});
  for (std::size_t c = 0; c < 32; ++c) EXPECT_EQ(result.core_pstate[c], 2u);
  for (std::size_t c = 32; c < 64; ++c) EXPECT_EQ(result.core_pstate[c], 1u);
}

}  // namespace
}  // namespace tapo::core
