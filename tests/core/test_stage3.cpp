#include "core/stage3.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tapo::core {
namespace {

std::vector<std::size_t> all_at(const dc::DataCenter& dc, std::size_t state) {
  std::vector<std::size_t> pstates(dc.total_cores());
  for (std::size_t k = 0; k < dc.total_cores(); ++k) {
    const auto& spec = dc.node_types[dc.core_type(k)];
    pstates[k] = std::min(state, spec.off_state());
  }
  return pstates;
}

TEST(Stage3, AllOffYieldsZeroReward) {
  const auto scenario = test::make_small_scenario(51, 6, 1);
  const auto result =
      solve_stage3(scenario.dc, all_at(scenario.dc, 99));  // clamped to off
  ASSERT_TRUE(result.optimal);
  EXPECT_DOUBLE_EQ(result.reward_rate, 0.0);
}

TEST(Stage3, AllP0PositiveReward) {
  const auto scenario = test::make_small_scenario(52, 6, 1);
  const auto result = solve_stage3(scenario.dc, all_at(scenario.dc, 0));
  ASSERT_TRUE(result.optimal);
  EXPECT_GT(result.reward_rate, 0.0);
}

TEST(Stage3, RespectsCoreCapacity) {
  const auto scenario = test::make_small_scenario(53, 6, 1);
  const auto& dc = scenario.dc;
  const auto pstates = all_at(dc, 1);
  const auto result = solve_stage3(dc, pstates);
  ASSERT_TRUE(result.optimal);
  for (std::size_t k = 0; k < dc.total_cores(); ++k) {
    double util = 0.0;
    for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
      if (result.tc(i, k) > 0.0) {
        util += result.tc(i, k) * dc.ecs.etc_seconds(i, dc.core_type(k), pstates[k]);
      }
    }
    EXPECT_LE(util, 1.0 + 1e-7);
  }
}

TEST(Stage3, RespectsArrivalRates) {
  const auto scenario = test::make_small_scenario(54, 6, 1);
  const auto& dc = scenario.dc;
  const auto result = solve_stage3(dc, all_at(dc, 0));
  ASSERT_TRUE(result.optimal);
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    EXPECT_LE(result.per_type_rate[i], dc.task_types[i].arrival_rate + 1e-7);
  }
}

TEST(Stage3, DeadlineInfeasiblePairsGetZeroRate) {
  const auto scenario = test::make_small_scenario(55, 6, 1);
  const auto& dc = scenario.dc;
  const auto pstates = all_at(dc, 3);  // slowest active state
  const auto result = solve_stage3(dc, pstates);
  ASSERT_TRUE(result.optimal);
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    for (std::size_t k = 0; k < dc.total_cores(); ++k) {
      if (!dc.ecs.can_meet_deadline(i, dc.core_type(k), pstates[k],
                                    dc.task_types[i].relative_deadline)) {
        EXPECT_DOUBLE_EQ(result.tc(i, k), 0.0);
      }
    }
  }
}

TEST(Stage3, AggregatedMatchesPerCoreLP) {
  // The class aggregation must be lossless: identical cores are fungible.
  for (std::uint64_t seed : {61, 62, 63}) {
    const auto scenario = test::make_small_scenario(seed, 4, 1);
    const auto& dc = scenario.dc;
    // A mixed P-state pattern across cores.
    std::vector<std::size_t> pstates(dc.total_cores());
    for (std::size_t k = 0; k < dc.total_cores(); ++k) {
      const auto& spec = dc.node_types[dc.core_type(k)];
      pstates[k] = k % (spec.off_state() + 1);
    }
    const auto fast = solve_stage3(dc, pstates);
    const auto reference = solve_stage3_percore(dc, pstates);
    ASSERT_TRUE(fast.optimal && reference.optimal);
    EXPECT_NEAR(fast.reward_rate, reference.reward_rate,
                1e-6 * std::max(1.0, reference.reward_rate))
        << "seed " << seed;
  }
}

TEST(Stage3, RewardMatchesTcSum) {
  const auto scenario = test::make_small_scenario(56, 6, 1);
  const auto& dc = scenario.dc;
  const auto result = solve_stage3(dc, all_at(dc, 0));
  ASSERT_TRUE(result.optimal);
  double reward = 0.0;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    reward += dc.task_types[i].reward * result.per_type_rate[i];
  }
  EXPECT_NEAR(reward, result.reward_rate, 1e-7 * std::max(1.0, reward));
}

TEST(Stage3, MorePowerfulStatesEarnMore) {
  const auto scenario = test::make_small_scenario(57, 6, 1);
  const auto& dc = scenario.dc;
  const auto p0 = solve_stage3(dc, all_at(dc, 0));
  const auto p2 = solve_stage3(dc, all_at(dc, 2));
  ASSERT_TRUE(p0.optimal && p2.optimal);
  EXPECT_GE(p0.reward_rate, p2.reward_rate - 1e-9);
}

TEST(Stage3, UniformWithinClassExpansion) {
  const auto scenario = test::make_small_scenario(58, 6, 1);
  const auto& dc = scenario.dc;
  const auto pstates = all_at(dc, 0);
  const auto result = solve_stage3(dc, pstates);
  ASSERT_TRUE(result.optimal);
  // Cores of the same node type at the same P-state carry identical rates.
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    for (std::size_t k1 = 0; k1 < dc.total_cores(); ++k1) {
      for (std::size_t k2 = k1 + 1; k2 < dc.total_cores(); ++k2) {
        if (dc.core_type(k1) == dc.core_type(k2)) {
          EXPECT_NEAR(result.tc(i, k1), result.tc(i, k2), 1e-9);
        }
      }
    }
    break;  // one task type suffices; the loop is O(cores^2)
  }
}

}  // namespace
}  // namespace tapo::core
