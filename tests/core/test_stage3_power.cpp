#include "core/stage3_power.h"

#include <gtest/gtest.h>

#include "core/stage2.h"
#include "core/stage3.h"
#include "testutil.h"

namespace tapo::core {
namespace {

struct TaskPowerFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(401, 10, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const ThreeStageAssigner assigner(scenario->dc, *model);
    plain = assigner.assign();
    ASSERT_TRUE(plain.feasible);
  }
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  Assignment plain;
};

TEST_F(TaskPowerFixture, UnitFactorsReproducePlainStage3) {
  dc::TaskPowerFactors unit;  // all 1.0
  const auto aware = solve_stage3_power_aware(
      scenario->dc, *model, plain.crac_out_c, plain.core_pstate, unit);
  ASSERT_TRUE(aware.optimal);
  // With unit factors the power rows are constants satisfied by stages 1-2,
  // so the optimum must match the plain Stage-3 LP.
  EXPECT_NEAR(aware.reward_rate, plain.reward_rate,
              1e-6 * std::max(1.0, plain.reward_rate));
  // And the expected node powers equal the P-state powers.
  const auto nominal = scenario->dc.node_power_from_pstates(plain.core_pstate);
  for (std::size_t j = 0; j < nominal.size(); ++j) {
    EXPECT_NEAR(aware.node_power_kw[j], nominal[j], 1e-9);
  }
}

TEST_F(TaskPowerFixture, CheaperTasksLowerExpectedPower) {
  dc::TaskPowerFactors cheap;
  cheap.task_factor.assign(scenario->dc.num_task_types(), 0.7);
  cheap.idle_factor = 0.6;
  const auto aware = solve_stage3_power_aware(
      scenario->dc, *model, plain.crac_out_c, plain.core_pstate, cheap);
  ASSERT_TRUE(aware.optimal);
  const auto nominal = scenario->dc.node_power_from_pstates(plain.core_pstate);
  double nominal_total = 0.0;
  for (double p : nominal) nominal_total += p;
  EXPECT_LT(aware.compute_power_kw, nominal_total);
}

TEST_F(TaskPowerFixture, RespectsCapacityArrivalAndDeadlines) {
  dc::TaskPowerFactors cheap;
  cheap.task_factor.assign(scenario->dc.num_task_types(), 0.8);
  cheap.idle_factor = 0.7;
  const auto& dc = scenario->dc;
  const auto aware = solve_stage3_power_aware(dc, *model, plain.crac_out_c,
                                              plain.core_pstate, cheap);
  ASSERT_TRUE(aware.optimal);
  for (std::size_t k = 0; k < dc.total_cores(); ++k) {
    double util = 0.0;
    for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
      const double rate = aware.tc(i, k);
      if (rate <= 0.0) continue;
      EXPECT_TRUE(dc.ecs.can_meet_deadline(i, dc.core_type(k),
                                           plain.core_pstate[k],
                                           dc.task_types[i].relative_deadline));
      util += rate * dc.ecs.etc_seconds(i, dc.core_type(k), plain.core_pstate[k]);
    }
    EXPECT_LE(util, 1.0 + 1e-6);
  }
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    double total = 0.0;
    for (std::size_t k = 0; k < dc.total_cores(); ++k) total += aware.tc(i, k);
    EXPECT_LE(total, dc.task_types[i].arrival_rate + 1e-6);
  }
}

TEST_F(TaskPowerFixture, ExpectedPowerWithinBudgetAndRedlines) {
  dc::TaskPowerFactors cheap;
  cheap.task_factor.assign(scenario->dc.num_task_types(), 0.75);
  cheap.idle_factor = 0.65;
  const auto aware = solve_stage3_power_aware(
      scenario->dc, *model, plain.crac_out_c, plain.core_pstate, cheap);
  ASSERT_TRUE(aware.optimal);
  EXPECT_LE(aware.compute_power_kw + aware.crac_power_kw,
            scenario->dc.p_const_kw + 1e-6);
  const auto temps = model->solve(plain.crac_out_c, aware.node_power_kw);
  EXPECT_TRUE(model->within_redlines(temps));
}

TEST_F(TaskPowerFixture, PipelineReclaimsStrandedPower) {
  dc::TaskPowerFactors cheap;
  cheap.task_factor.assign(scenario->dc.num_task_types(), 0.7);
  cheap.idle_factor = 0.6;
  TaskPowerAssigner assigner(scenario->dc, *model, cheap);
  const TaskPowerResult result = assigner.assign();
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.iterations, 2u);
  // Iterating on the virtual budget must recover reward over iteration 1
  // (which equals the plain pipeline under the conservative power bound).
  EXPECT_GT(result.assignment.reward_rate, result.first_iteration_reward * 1.0);
  EXPECT_LE(result.expected_power_kw, scenario->dc.p_const_kw + 1e-6);
}

TEST_F(TaskPowerFixture, PipelineRestoresBudget) {
  dc::TaskPowerFactors cheap;
  cheap.task_factor.assign(scenario->dc.num_task_types(), 0.8);
  cheap.idle_factor = 0.8;
  const double before = scenario->dc.p_const_kw;
  TaskPowerAssigner assigner(scenario->dc, *model, cheap);
  assigner.assign();
  EXPECT_DOUBLE_EQ(scenario->dc.p_const_kw, before);
}

TEST_F(TaskPowerFixture, UnitFactorsPipelineStopsEarly) {
  dc::TaskPowerFactors unit;
  TaskPowerAssigner assigner(scenario->dc, *model, unit);
  const TaskPowerResult result = assigner.assign();
  ASSERT_TRUE(result.feasible);
  // No stranded power to reclaim: one or two iterations and no gain.
  EXPECT_NEAR(result.assignment.reward_rate, result.first_iteration_reward,
              1e-6 * result.first_iteration_reward);
}

TEST_F(TaskPowerFixture, RejectsFactorsAboveOne) {
  dc::TaskPowerFactors hot;
  hot.task_factor.assign(scenario->dc.num_task_types(), 1.5);
  EXPECT_DEATH(TaskPowerAssigner(scenario->dc, *model, hot),
               "power bound");
}

TEST_F(TaskPowerFixture, PerTypeFactorsShiftWorkTowardCheapTasks) {
  // Give half the task types a much cheaper power profile; the power-aware
  // LP should never earn less than with uniform expensive factors.
  const std::size_t t = scenario->dc.num_task_types();
  dc::TaskPowerFactors mixed, expensive;
  mixed.task_factor.assign(t, 1.0);
  for (std::size_t i = 0; i < t; i += 2) mixed.task_factor[i] = 0.6;
  mixed.idle_factor = 0.6;  // idle never draws more than any running task
  expensive.task_factor.assign(t, 1.0);
  const auto with_mixed = solve_stage3_power_aware(
      scenario->dc, *model, plain.crac_out_c, plain.core_pstate, mixed);
  const auto with_expensive = solve_stage3_power_aware(
      scenario->dc, *model, plain.crac_out_c, plain.core_pstate, expensive);
  ASSERT_TRUE(with_mixed.optimal && with_expensive.optimal);
  EXPECT_GE(with_mixed.reward_rate, with_expensive.reward_rate - 1e-9);
}

}  // namespace
}  // namespace tapo::core
