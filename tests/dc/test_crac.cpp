#include "dc/crac.h"

#include <gtest/gtest.h>

namespace tapo::dc {
namespace {

CracSpec make_crac(double flow = 1.0) {
  CracSpec c;
  c.flow_m3s = flow;
  return c;
}

TEST(Crac, CopMatchesEq8) {
  const CracSpec c = make_crac();
  // CoP(tau) = 0.0068 tau^2 + 0.0008 tau + 0.458 (HP Utility Data Center).
  EXPECT_NEAR(c.cop(15.0), 0.0068 * 225 + 0.0008 * 15 + 0.458, 1e-12);
  EXPECT_NEAR(c.cop(0.0), 0.458, 1e-12);
  EXPECT_NEAR(c.cop(25.0), 4.728, 1e-12);
}

TEST(Crac, CopIncreasesWithOutletTemperature) {
  const CracSpec c = make_crac();
  double prev = 0.0;
  for (double t = 5.0; t <= 30.0; t += 1.0) {
    EXPECT_GT(c.cop(t), prev);
    prev = c.cop(t);
  }
}

TEST(Crac, HeatRemovedEq2) {
  const CracSpec c = make_crac(2.0);
  // rho * Cp * F * (Tin - Tout) = 1.205 * 1 * 2 * 10.
  EXPECT_NEAR(c.heat_removed_kw(25.0, 15.0), 24.1, 1e-12);
}

TEST(Crac, NoHeatRemovedWhenInletColderThanSetpoint) {
  const CracSpec c = make_crac(2.0);
  EXPECT_DOUBLE_EQ(c.heat_removed_kw(10.0, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(c.power_kw(10.0, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(c.power_kw(15.0, 15.0), 0.0);
}

TEST(Crac, PowerEq3) {
  const CracSpec c = make_crac(1.5);
  const double t_in = 28.0, t_out = 18.0;
  const double q = 1.205 * 1.0 * 1.5 * (t_in - t_out);
  EXPECT_NEAR(c.power_kw(t_in, t_out), q / c.cop(t_out), 1e-12);
}

TEST(Crac, HigherSetpointIsCheaperForSameInlet) {
  // Raising Tout both removes less heat and runs at a better CoP.
  const CracSpec c = make_crac(1.0);
  EXPECT_LT(c.power_kw(30.0, 20.0), c.power_kw(30.0, 15.0));
  EXPECT_LT(c.power_kw(30.0, 15.0), c.power_kw(30.0, 10.0));
}

TEST(Crac, PowerScalesWithFlow) {
  const CracSpec c1 = make_crac(1.0);
  const CracSpec c2 = make_crac(2.0);
  EXPECT_NEAR(2.0 * c1.power_kw(30.0, 20.0), c2.power_kw(30.0, 20.0), 1e-12);
}

TEST(Crac, EnergyBalanceWorkedExample) {
  // A 0.793 kW node heats its 0.07 m^3/s airflow by ~9.4 degC; one CRAC with
  // the same flow removing that heat at Tout=20 spends q/CoP(20).
  const CracSpec c = make_crac(0.07);
  const double t_in = 20.0 + 0.793 / (1.205 * 0.07);
  const double power = c.power_kw(t_in, 20.0);
  EXPECT_NEAR(power, 0.793 / c.cop(20.0), 1e-12);
  EXPECT_GT(power, 0.2);
  EXPECT_LT(power, 0.3);
}

}  // namespace
}  // namespace tapo::dc
