#include "dc/datacenter.h"

#include <gtest/gtest.h>

namespace tapo::dc {
namespace {

DataCenter make_small_dc() {
  DataCenter dc;
  dc.node_types = table1_node_types(0.3);
  dc.nodes = {{0}, {1}, {0}};
  dc.layout = make_hot_cold_aisle_layout(3, 2);
  CracSpec crac;
  crac.flow_m3s = (0.07 * 2 + 0.0828) / 2.0;
  dc.cracs = {crac, crac};
  dc.finalize();
  return dc;
}

TEST(DataCenter, CountsAndIndexing) {
  const DataCenter dc = make_small_dc();
  EXPECT_EQ(dc.num_nodes(), 3u);
  EXPECT_EQ(dc.num_cracs(), 2u);
  EXPECT_EQ(dc.num_entities(), 5u);
  EXPECT_EQ(dc.total_cores(), 96u);
}

TEST(DataCenter, CoreOffsetsAreContiguous) {
  const DataCenter dc = make_small_dc();
  EXPECT_EQ(dc.core_offset(0), 0u);
  EXPECT_EQ(dc.core_offset(1), 32u);
  EXPECT_EQ(dc.core_offset(2), 64u);
}

TEST(DataCenter, CoreToNodeAndType) {
  const DataCenter dc = make_small_dc();
  EXPECT_EQ(dc.core_node(0), 0u);
  EXPECT_EQ(dc.core_node(31), 0u);
  EXPECT_EQ(dc.core_node(32), 1u);
  EXPECT_EQ(dc.core_node(95), 2u);
  EXPECT_EQ(dc.core_type(0), 0u);
  EXPECT_EQ(dc.core_type(40), 1u);  // node 1 is type 1 (NEC)
  EXPECT_EQ(dc.core_type(70), 0u);
}

TEST(DataCenter, EntityFlows) {
  const DataCenter dc = make_small_dc();
  EXPECT_DOUBLE_EQ(dc.entity_flow(0), dc.cracs[0].flow_m3s);
  EXPECT_DOUBLE_EQ(dc.entity_flow(2), 0.07);    // node 0, HP type
  EXPECT_DOUBLE_EQ(dc.entity_flow(3), 0.0828);  // node 1, NEC type
  EXPECT_NEAR(dc.total_node_flow(), 0.07 * 2 + 0.0828, 1e-12);
}

TEST(DataCenter, BasePower) {
  const DataCenter dc = make_small_dc();
  EXPECT_NEAR(dc.total_base_power_kw(), 0.353 * 2 + 0.418, 1e-12);
}

TEST(DataCenter, MaxComputePower) {
  const DataCenter dc = make_small_dc();
  const double expected = 2 * (0.353 + 32 * 0.01375) + (0.418 + 32 * 0.01625);
  EXPECT_NEAR(dc.max_compute_power_kw(), expected, 1e-12);
}

TEST(DataCenter, NodePowerFromPstates) {
  const DataCenter dc = make_small_dc();
  std::vector<std::size_t> pstates(dc.total_cores(), dc.node_types[0].off_state());
  // Node 1 is NEC type: fix its off state index too (same value, 4).
  auto powers = dc.node_power_from_pstates(pstates);
  EXPECT_NEAR(powers[0], 0.353, 1e-12);
  EXPECT_NEAR(powers[1], 0.418, 1e-12);

  pstates[0] = 0;   // one HP core at P0
  pstates[32] = 0;  // one NEC core at P0
  powers = dc.node_power_from_pstates(pstates);
  EXPECT_NEAR(powers[0], 0.353 + 0.01375, 1e-12);
  EXPECT_NEAR(powers[1], 0.418 + 0.01625, 1e-12);
}

TEST(DataCenter, FinalizeRejectsEmpty) {
  DataCenter dc;
  dc.node_types = table1_node_types(0.3);
  EXPECT_DEATH(dc.finalize(), "no compute nodes");
}

TEST(DataCenter, FinalizeRejectsLayoutMismatch) {
  DataCenter dc;
  dc.node_types = table1_node_types(0.3);
  dc.nodes = {{0}, {0}};
  dc.cracs = {CracSpec{0.1}};
  dc.layout = make_hot_cold_aisle_layout(3, 1);  // 3 != 2
  EXPECT_DEATH(dc.finalize(), "out of sync");
}

}  // namespace
}  // namespace tapo::dc
