#include "dc/layout.h"

#include <gtest/gtest.h>

#include <set>

namespace tapo::dc {
namespace {

TEST(Layout, PaperConfiguration150Nodes3Cracs) {
  const Layout layout = make_hot_cold_aisle_layout(150, 3);
  EXPECT_EQ(layout.num_cracs, 3u);
  EXPECT_EQ(layout.num_hot_aisles, 3u);
  EXPECT_EQ(layout.nodes.size(), 150u);
  // 150 nodes = 30 full racks of 5.
  std::set<std::size_t> racks;
  for (const auto& n : layout.nodes) racks.insert(n.rack);
  EXPECT_EQ(racks.size(), 30u);
}

TEST(Layout, LabelsFollowRackSlots) {
  const Layout layout = make_hot_cold_aisle_layout(10, 1);
  for (const auto& n : layout.nodes) {
    EXPECT_EQ(static_cast<std::size_t>(n.label), n.slot);
  }
  EXPECT_EQ(layout.nodes[0].label, RackLabel::A);  // bottom
  EXPECT_EQ(layout.nodes[4].label, RackLabel::E);  // top
  EXPECT_EQ(layout.nodes[5].label, RackLabel::A);  // next rack bottom
}

TEST(Layout, HotAislesCoverAllCracs) {
  const Layout layout = make_hot_cold_aisle_layout(150, 3);
  std::set<std::size_t> aisles;
  for (const auto& n : layout.nodes) {
    EXPECT_LT(n.hot_aisle, 3u);
    aisles.insert(n.hot_aisle);
  }
  EXPECT_EQ(aisles.size(), 3u);
}

TEST(Layout, TwoRackRowsPerHotAisle) {
  const Layout layout = make_hot_cold_aisle_layout(60, 2);
  // Racks 0,1 -> aisle 0; racks 2,3 -> aisle 1; racks 4,5 -> aisle 0; ...
  EXPECT_EQ(layout.nodes[0].hot_aisle, 0u);               // rack 0
  EXPECT_EQ(layout.nodes[2 * 5].hot_aisle, 1u);           // rack 2
  EXPECT_EQ(layout.nodes[4 * 5].hot_aisle, 0u);           // rack 4
}

TEST(Layout, SplitMatrixRowsSumToOne) {
  for (std::size_t cracs : {1u, 2u, 3u, 5u}) {
    const Layout layout = make_hot_cold_aisle_layout(25, cracs);
    for (std::size_t a = 0; a < cracs; ++a) {
      double sum = 0.0;
      for (std::size_t c = 0; c < cracs; ++c) {
        EXPECT_GE(layout.hot_aisle_to_crac(a, c), 0.0);
        sum += layout.hot_aisle_to_crac(a, c);
      }
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(Layout, FacingCracGetsDominantShare) {
  const Layout layout = make_hot_cold_aisle_layout(25, 3);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t c = 0; c < 3; ++c) {
      if (c != a) {
        EXPECT_GT(layout.hot_aisle_to_crac(a, a), layout.hot_aisle_to_crac(a, c));
      }
    }
  }
}

TEST(Layout, PartialLastRack) {
  const Layout layout = make_hot_cold_aisle_layout(7, 1);
  EXPECT_EQ(layout.nodes.size(), 7u);
  EXPECT_EQ(layout.nodes[6].rack, 1u);
  EXPECT_EQ(layout.nodes[6].label, RackLabel::B);
}

TEST(Layout, SingleCracDegenerate) {
  const Layout layout = make_hot_cold_aisle_layout(5, 1);
  EXPECT_DOUBLE_EQ(layout.hot_aisle_to_crac(0, 0), 1.0);
}

TEST(RackLabelNames, ToString) {
  EXPECT_STREQ(to_string(RackLabel::A), "A");
  EXPECT_STREQ(to_string(RackLabel::E), "E");
}

}  // namespace
}  // namespace tapo::dc
