#include "dc/nodespec.h"

#include <gtest/gtest.h>

namespace tapo::dc {
namespace {

TEST(Table1, TwoNodeTypes) {
  const auto types = table1_node_types(0.3);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0].name(), "HP ProLiant DL785 G5");
  EXPECT_EQ(types[1].name(), "NEC Express5800/A1080a-S");
}

TEST(Table1, MatchesPaperParameters) {
  const auto types = table1_node_types(0.3);
  // Row "Base power consumption (kW)".
  EXPECT_NEAR(types[0].base_power_kw(), 0.353, 1e-12);
  EXPECT_NEAR(types[1].base_power_kw(), 0.418, 1e-12);
  // Row "Number of cores".
  EXPECT_EQ(types[0].cores_per_node(), 32u);
  EXPECT_EQ(types[1].cores_per_node(), 32u);
  // Row "Number of P-states".
  EXPECT_EQ(types[0].num_active_pstates(), 4u);
  EXPECT_EQ(types[1].num_active_pstates(), 4u);
  // Row "Power consumption of P-state 0 (kW)".
  EXPECT_NEAR(types[0].core_power_kw(0), 0.01375, 1e-12);
  EXPECT_NEAR(types[1].core_power_kw(0), 0.01625, 1e-12);
  // Row "Clock frequencies of P-states (MHz)".
  const double f1[4] = {2500, 2100, 1700, 800};
  const double f2[4] = {2666, 2200, 1700, 1000};
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(types[0].freq_mhz(k), f1[k]);
    EXPECT_DOUBLE_EQ(types[1].freq_mhz(k), f2[k]);
  }
  // Row "Air flow rate (m^3/s)".
  EXPECT_NEAR(types[0].airflow_m3s(), 0.07, 1e-12);
  EXPECT_NEAR(types[1].airflow_m3s(), 0.0828, 1e-12);
}

TEST(NodeTypeSpec, OffStateIndexAndPower) {
  const auto types = table1_node_types(0.3);
  EXPECT_EQ(types[0].off_state(), 4u);
  EXPECT_EQ(types[0].num_pstates_with_off(), 5u);
  EXPECT_DOUBLE_EQ(types[0].core_power_kw(types[0].off_state()), 0.0);
  EXPECT_DOUBLE_EQ(types[0].freq_mhz(types[0].off_state()), 0.0);
  EXPECT_DOUBLE_EQ(types[0].core_static_power_kw(types[0].off_state()), 0.0);
}

TEST(NodeTypeSpec, NodePowerEq1) {
  const auto types = table1_node_types(0.3);
  const NodeTypeSpec& spec = types[0];
  std::vector<std::size_t> states(32, spec.off_state());
  EXPECT_NEAR(spec.node_power_kw(states), 0.353, 1e-12);
  states[0] = 0;
  states[1] = 2;
  EXPECT_NEAR(spec.node_power_kw(states),
              0.353 + spec.core_power_kw(0) + spec.core_power_kw(2), 1e-12);
}

TEST(NodeTypeSpec, MaxNodePowerMatchesAppendixA) {
  // Full-load HP DL785 G5 draws 0.793 kW (base 0.353 + 32 * 0.01375).
  const auto types = table1_node_types(0.3);
  EXPECT_NEAR(types[0].max_node_power_kw(), 0.793, 1e-12);
}

TEST(NodeTypeSpec, MaxAirTemperatureRiseMatchesAppendixA) {
  // Appendix A: 0.07 m^3/s guarantees at most ~9.4 degC rise at full load.
  const auto types = table1_node_types(0.3);
  const double rise =
      types[0].max_node_power_kw() / (1.205 * 1.0 * types[0].airflow_m3s());
  EXPECT_NEAR(rise, 9.4, 0.05);
}

TEST(NodeTypeSpec, StaticFractionPropagates) {
  const auto types = table1_node_types(0.2);
  EXPECT_NEAR(types[0].core_static_power_kw(0) / types[0].core_power_kw(0), 0.2,
              1e-12);
  EXPECT_NEAR(types[1].core_static_power_kw(0) / types[1].core_power_kw(0), 0.2,
              1e-12);
}

TEST(NodeTypeSpec, XeonVoltagesFromAppendixA) {
  const auto types = table1_node_types(0.3);
  const auto& pm = types[1].power_model();
  EXPECT_DOUBLE_EQ(pm.state(0).voltage, 1.35);
  EXPECT_DOUBLE_EQ(pm.state(1).voltage, 1.268);
  EXPECT_DOUBLE_EQ(pm.state(2).voltage, 1.18);
  EXPECT_DOUBLE_EQ(pm.state(3).voltage, 1.056);
}

}  // namespace
}  // namespace tapo::dc
