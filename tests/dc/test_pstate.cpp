#include "dc/pstate.h"

#include <gtest/gtest.h>

namespace tapo::dc {
namespace {

// The paper's node type 1 core: AMD Opteron 8381 HE, pi_0 = 0.01375 kW.
CorePowerModel opteron_model(double static_fraction) {
  return CorePowerModel(0.01375, static_fraction,
                        {{2500.0, 1.325}, {2100.0, 1.25}, {1700.0, 1.175},
                         {800.0, 1.025}});
}

TEST(CorePowerModel, P0PowerMatchesInput) {
  const auto m = opteron_model(0.3);
  EXPECT_NEAR(m.power_kw(0), 0.01375, 1e-12);
}

TEST(CorePowerModel, StaticFractionAtP0) {
  const auto m = opteron_model(0.3);
  EXPECT_NEAR(m.static_power_kw(0) / m.power_kw(0), 0.3, 1e-12);
  EXPECT_NEAR(m.dynamic_power_kw(0) / m.power_kw(0), 0.7, 1e-12);
}

TEST(CorePowerModel, PowerDecreasesWithPState) {
  for (double sf : {0.2, 0.3}) {
    const auto m = opteron_model(sf);
    for (std::size_t k = 1; k < m.num_active_states(); ++k) {
      EXPECT_LT(m.power_kw(k), m.power_kw(k - 1)) << "static fraction " << sf;
    }
  }
}

TEST(CorePowerModel, StaticShareGrowsInHigherPStates) {
  // Dynamic power falls with f*V^2 while static falls only with V, so the
  // static share must increase with the P-state index (the paper's first
  // observation in Section VII.B).
  const auto m = opteron_model(0.3);
  double prev = 0.0;
  for (std::size_t k = 0; k < m.num_active_states(); ++k) {
    const double share = m.static_power_kw(k) / m.power_kw(k);
    EXPECT_GT(share, prev);
    prev = share;
  }
}

TEST(CorePowerModel, Eq23Decomposition) {
  const auto m = opteron_model(0.3);
  for (std::size_t k = 0; k < m.num_active_states(); ++k) {
    const auto& s = m.state(k);
    const double expected =
        m.sc() * s.freq_mhz * s.voltage * s.voltage + m.beta() * s.voltage;
    EXPECT_NEAR(m.power_kw(k), expected, 1e-15);
  }
}

TEST(CorePowerModel, SCAndBetaFromAppendixA) {
  const auto m = opteron_model(0.3);
  // beta = s*pi0/V0; SC = (1-s)*pi0/(f0*V0^2).
  EXPECT_NEAR(m.beta(), 0.3 * 0.01375 / 1.325, 1e-15);
  EXPECT_NEAR(m.sc(), 0.7 * 0.01375 / (2500.0 * 1.325 * 1.325), 1e-18);
}

TEST(CorePowerModel, LowerStaticFractionMakesMidStatesMoreEfficient) {
  // The headline mechanism behind the paper's set-3 result: with 20% static
  // share, intermediate P-states have better frequency-per-watt than P0.
  const auto m20 = opteron_model(0.2);
  const auto m30 = opteron_model(0.3);
  const auto ratio = [](const CorePowerModel& m, std::size_t k) {
    return m.state(k).freq_mhz / m.power_kw(k);
  };
  // P2 beats P0 in both, by a wider margin at 20%.
  EXPECT_GT(ratio(m30, 2), ratio(m30, 0));
  EXPECT_GT(ratio(m20, 2) / ratio(m20, 0), ratio(m30, 2) / ratio(m30, 0));
}

TEST(CorePowerModel, ZeroStaticFraction) {
  const auto m = opteron_model(0.0);
  EXPECT_DOUBLE_EQ(m.static_power_kw(0), 0.0);
  EXPECT_NEAR(m.power_kw(0), 0.01375, 1e-15);
}

}  // namespace
}  // namespace tapo::dc
