#include "dc/workload.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tapo::dc {
namespace {

TEST(EcsTable, StoresAndReads) {
  EcsTable ecs(2, 2, 3);
  ecs.set_ecs(0, 1, 0, 1.5);
  ecs.set_ecs(1, 0, 1, 0.25);
  EXPECT_DOUBLE_EQ(ecs.ecs(0, 1, 0), 1.5);
  EXPECT_DOUBLE_EQ(ecs.ecs(1, 0, 1), 0.25);
  EXPECT_DOUBLE_EQ(ecs.ecs(0, 0, 0), 0.0);  // defaults to 0
}

TEST(EcsTable, Dimensions) {
  EcsTable ecs(8, 2, 5);
  EXPECT_EQ(ecs.num_task_types(), 8u);
  EXPECT_EQ(ecs.num_node_types(), 2u);
  EXPECT_EQ(ecs.num_states(), 5u);
}

TEST(EcsTable, EtcIsReciprocal) {
  EcsTable ecs(1, 1, 2);
  ecs.set_ecs(0, 0, 0, 4.0);
  EXPECT_DOUBLE_EQ(ecs.etc_seconds(0, 0, 0), 0.25);
}

TEST(EcsTable, ZeroEcsHasInfiniteEtc) {
  // Section V.B.1: 1/ECS undefined at 0; we use +inf, which makes every
  // deadline test fail - equivalent to the paper's "small enough" epsilon.
  EcsTable ecs(1, 1, 2);
  EXPECT_TRUE(std::isinf(ecs.etc_seconds(0, 0, 0)));
  EXPECT_FALSE(ecs.can_meet_deadline(0, 0, 0, 1e9));
}

TEST(EcsTable, OffStateAlwaysZero) {
  EcsTable ecs(1, 1, 3);
  // Setting a nonzero ECS on the off state (last index) is a modelling error.
  EXPECT_DEATH(ecs.set_ecs(0, 0, 2, 1.0), "off state");
}

TEST(EcsTable, DeadlineBoundary) {
  EcsTable ecs(1, 1, 2);
  ecs.set_ecs(0, 0, 0, 2.0);  // etc = 0.5 s
  EXPECT_TRUE(ecs.can_meet_deadline(0, 0, 0, 0.5));
  EXPECT_TRUE(ecs.can_meet_deadline(0, 0, 0, 0.6));
  EXPECT_FALSE(ecs.can_meet_deadline(0, 0, 0, 0.49));
}

TEST(TaskType, Defaults) {
  TaskType t;
  EXPECT_DOUBLE_EQ(t.reward, 1.0);
  EXPECT_DOUBLE_EQ(t.arrival_rate, 0.0);
}

}  // namespace
}  // namespace tapo::dc
