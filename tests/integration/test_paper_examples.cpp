// Worked numeric examples taken directly from the paper's text.
#include <gtest/gtest.h>

#include "dc/crac.h"
#include "dc/nodespec.h"
#include "solver/piecewise.h"

namespace tapo {
namespace {

TEST(PaperNumbers, Eq8CopCurve) {
  // "CoP(tau) = 0.0068 tau^2 + 0.0008 tau + 0.458" - HP Utility Data Center.
  dc::CracSpec crac;
  EXPECT_NEAR(crac.cop(10.0), 0.0068 * 100 + 0.008 + 0.458, 1e-12);
  EXPECT_NEAR(crac.cop(20.0), 0.0068 * 400 + 0.016 + 0.458, 1e-12);
}

TEST(PaperNumbers, AppendixABasePower) {
  // "At 100% utilization the power consumption of the server was 0.793 kW;
  // subtracting 8 x 0.055 kW processors leaves 0.353 kW base."
  EXPECT_NEAR(0.793 - 8 * 0.055, 0.353, 1e-12);
  const auto types = dc::table1_node_types(0.3);
  EXPECT_NEAR(types[0].base_power_kw() +
                  32 * types[0].core_power_kw(0),
              0.793, 1e-12);
}

TEST(PaperNumbers, AppendixAP0PowerPerCore) {
  // "the total power consumption of the processor is divided by the number
  // of cores: 0.055 / 4 = 0.01375 kW."
  EXPECT_NEAR(0.055 / 4.0, 0.01375, 1e-15);
}

TEST(PaperNumbers, AppendixAAirflowTemperatureRise) {
  // "0.07 m^3/s guarantees the maximum increase ... will be 9.4 C":
  // dT = P / (rho * Cp * F) = 0.793 / (1.205 * 0.07).
  EXPECT_NEAR(0.793 / (1.205 * 1.0 * 0.07), 9.4, 0.05);
}

TEST(PaperNumbers, Fig3RewardRatePoints) {
  // Section V.B.2 worked example: RR through (0,0), (0.05,0.5), (0.1,0.9),
  // (0.15,1.2).
  const solver::PiecewiseLinear rr(
      {{0.0, 0.0}, {0.05, 0.5}, {0.1, 0.9}, {0.15, 1.2}});
  EXPECT_TRUE(rr.is_concave());
  EXPECT_TRUE(rr.is_nondecreasing());
  EXPECT_NEAR(rr.value(0.075), 0.7, 1e-12);
}

TEST(PaperNumbers, Fig4BadPStateRatioNine) {
  // "P-state 2 is a bad P-state because the ratio of its aggregate reward
  // rate to power consumption is 0, where the ratio of P-state 1's ... is 9."
  const solver::PiecewiseLinear fig4(
      {{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.9}, {0.15, 1.2}});
  EXPECT_NEAR(fig4.value(0.1) / 0.1, 9.0, 1e-12);
  EXPECT_NEAR(fig4.value(0.05) / 0.05, 0.0, 1e-12);
}

TEST(PaperNumbers, TwoCoreExampleTotalReward) {
  // "the optimal solution would be to put one core in P-state 1 (0.1 W) and
  // the other in P-state 3 (0 W) ... total aggregate reward rate of 0.45 x 2
  // halves"; with 0.1 W shared across 2 cores the hull value at 0.05 each is
  // 0.45 total: hull(0.05) * 2 cores = 0.45? The paper states the total is
  // 0.45, which equals the hull evaluated at the node budget via the
  // scale_copies construction.
  const solver::PiecewiseLinear fig4(
      {{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.9}, {0.15, 1.2}});
  const auto hull = fig4.upper_concave_hull();
  const auto node = hull.scale_copies(2);
  // Node budget 0.1 W over two cores -> reward 0.9 (one core at P1) which
  // equals 2 * hull(0.05) = 0.9; the paper's 0.45 figure is per core.
  EXPECT_NEAR(node.value(0.1), 0.9, 1e-12);
  EXPECT_NEAR(hull.value(0.05), 0.45, 1e-12);
}

TEST(PaperNumbers, NodeType2XeonParameters) {
  const auto types = dc::table1_node_types(0.3);
  EXPECT_NEAR(types[1].core_power_kw(0), 0.01625, 1e-12);
  // 4 processors x 8 cores = 32.
  EXPECT_EQ(types[1].cores_per_node(), 32u);
  EXPECT_DOUBLE_EQ(types[1].freq_mhz(0), 2666.0);
}

TEST(PaperNumbers, SpecPowerPerformanceRatio) {
  // "The ratio of the performance of node type 1 to node type 2 is 0.6."
  // This is a generator input; assert the constant used.
  EXPECT_DOUBLE_EQ(0.6 / 1.0, 0.6);
}

}  // namespace
}  // namespace tapo
