// End-to-end pipeline tests: scenario -> first-step assignment (both
// techniques) -> verification -> online simulation.
#include <gtest/gtest.h>

#include "core/assigner.h"
#include "core/baseline.h"
#include "sim/des.h"
#include "testutil.h"

namespace tapo {
namespace {

class PipelineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSeeds, BothTechniquesProduceVerifiedAssignments) {
  const auto scenario = test::make_small_scenario(GetParam(), 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);

  const core::ThreeStageAssigner three(scenario.dc, model);
  const core::Assignment a = three.assign();
  ASSERT_TRUE(a.feasible);
  EXPECT_TRUE(core::verify_assignment(scenario.dc, model, a).ok());

  const core::BaselineAssigner base(scenario.dc, model);
  const core::Assignment b = base.assign();
  ASSERT_TRUE(b.feasible);
  EXPECT_TRUE(core::verify_assignment(scenario.dc, model, b).ok());

  // Both saturate most of the budget in an oversubscribed data center.
  EXPECT_GT(a.total_power_kw(), 0.85 * scenario.dc.p_const_kw);
  EXPECT_GT(b.total_power_kw(), 0.70 * scenario.dc.p_const_kw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeeds,
                         ::testing::Values(201, 202, 203, 204, 205));

TEST(Pipeline, PowerBudgetScalingMonotone) {
  // More budget never hurts either technique.
  auto scenario = test::make_small_scenario(211, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const double mid = scenario.dc.p_const_kw;

  std::vector<double> rewards_three, rewards_base;
  for (double factor : {0.85, 1.0, 1.15}) {
    scenario.dc.p_const_kw = mid * factor;
    const core::ThreeStageAssigner three(scenario.dc, model);
    const core::BaselineAssigner base(scenario.dc, model);
    const auto a = three.assign();
    const auto b = base.assign();
    ASSERT_TRUE(a.feasible && b.feasible);
    rewards_three.push_back(a.reward_rate);
    rewards_base.push_back(b.reward_rate);
  }
  // Heuristic CRAC search + rounding introduce small non-monotonicities; the
  // trend over a 30% budget swing must still be upward.
  EXPECT_GT(rewards_three.back(), rewards_three.front() * 0.99);
  EXPECT_GT(rewards_base.back(), rewards_base.front() * 0.99);
}

TEST(Pipeline, RewardIsBoundedByArrivalValue) {
  const auto scenario = test::make_small_scenario(212, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  double max_value = 0.0;
  for (const auto& t : scenario.dc.task_types) {
    max_value += t.reward * t.arrival_rate;
  }
  const core::ThreeStageAssigner three(scenario.dc, model);
  const auto a = three.assign();
  ASSERT_TRUE(a.feasible);
  EXPECT_LE(a.reward_rate, max_value + 1e-6);
}

TEST(Pipeline, SimulationConfirmsFirstStepPrediction) {
  const auto scenario = test::make_small_scenario(213, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const core::ThreeStageAssigner three(scenario.dc, model);
  const auto a = three.assign();
  ASSERT_TRUE(a.feasible);

  sim::SimOptions options;
  options.duration_seconds = 500.0;
  options.warmup_seconds = 100.0;
  const auto result = sim::simulate(scenario.dc, a, options);
  EXPECT_GT(result.reward_rate, 0.7 * a.reward_rate);
}

TEST(Pipeline, ThreeStageAdvantageOnFavorableConfig) {
  // Set-3 conditions (20% static power, Vprop = 0.3) are where the paper
  // reports the largest gains; averaged over seeds the advantage must be
  // positive at test scale too.
  double sum_improvement = 0.0;
  int runs = 0;
  for (std::uint64_t seed : {221, 222, 223, 224, 225, 226}) {
    scenario::ScenarioConfig config;
    config.num_nodes = 10;
    config.num_cracs = 2;
    config.static_fraction = 0.2;
    config.v_prop = 0.3;
    config.seed = seed;
    const auto scenario = scenario::generate_scenario(config);
    ASSERT_TRUE(scenario);
    const thermal::HeatFlowModel model(scenario->dc);
    core::ThreeStageOptions o25, o50;
    o25.stage1.psi = 25.0;
    o50.stage1.psi = 50.0;
    const core::ThreeStageAssigner three(scenario->dc, model);
    const auto best = core::best_of({three.assign(o25), three.assign(o50)});
    const core::BaselineAssigner base(scenario->dc, model);
    const auto b = base.assign();
    if (!best.feasible || !b.feasible) continue;
    sum_improvement += (best.reward_rate - b.reward_rate) / b.reward_rate;
    ++runs;
  }
  ASSERT_GE(runs, 4);
  EXPECT_GT(sum_improvement / runs, 0.0);
}

TEST(Pipeline, AssignmentsRemainValidUnderIndependentThermalCheck) {
  // Rebuild the heat-flow model from scratch and re-verify - guards against
  // accidental state sharing between solver and verifier.
  const auto scenario = test::make_small_scenario(231, 8, 2);
  core::Assignment a;
  {
    const thermal::HeatFlowModel model(scenario.dc);
    const core::ThreeStageAssigner three(scenario.dc, model);
    a = three.assign();
  }
  ASSERT_TRUE(a.feasible);
  const thermal::HeatFlowModel fresh(scenario.dc);
  EXPECT_TRUE(core::verify_assignment(scenario.dc, fresh, a).ok());
}

}  // namespace
}  // namespace tapo
