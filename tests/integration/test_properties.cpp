// Cross-module property tests: closed-form thermal solutions, solver stress,
// and invariant chains across the assignment techniques.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline.h"
#include "core/exact.h"
#include "core/stage1.h"
#include "solver/lp.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/rng.h"

namespace tapo {
namespace {

// ---- Closed-form thermal check: one node, one CRAC, equal flows. ----
//
// With proportional mixing and equal flows F the inlet weights are 1/2 CRAC
// + 1/2 node, giving analytically
//   Tin_node = tau + h P,  Tout_node = tau + 2 h P,  Tin_crac = tau + h P,
// where h = 1 / (rho Cp F). Heat removed = rho Cp F * (h P) = P exactly.
TEST(HeatFlowAnalytic, SingleNodeClosedForm) {
  dc::DataCenter dc;
  dc.node_types = dc::table1_node_types(0.3);
  dc.nodes = {{0}};
  dc.layout = dc::make_hot_cold_aisle_layout(1, 1);
  dc.cracs = {dc::CracSpec{0.07}};  // equal to the node flow
  dc.finalize();
  dc.alpha = test::proportional_alpha(dc);
  const thermal::HeatFlowModel model(dc);

  const double tau = 17.0, p = 0.61;
  const double h = 1.0 / (dc::kAirDensity * dc::kAirSpecificHeat * 0.07);
  const auto temps = model.solve({tau}, {p});
  EXPECT_NEAR(temps.node_in[0], tau + h * p, 1e-9);
  EXPECT_NEAR(temps.node_out[0], tau + 2.0 * h * p, 1e-9);
  EXPECT_NEAR(temps.crac_in[0], tau + h * p, 1e-9);
  EXPECT_NEAR(dc.cracs[0].heat_removed_kw(temps.crac_in[0], tau), p, 1e-9);
}

// Two identical nodes, one CRAC with the summed flow: by symmetry both nodes
// see the same inlet; the closed form generalizes with the same h per node.
TEST(HeatFlowAnalytic, TwoSymmetricNodes) {
  const auto dc = test::make_tiny_dc({0, 0}, 1);
  const thermal::HeatFlowModel model(dc);
  const auto temps = model.solve({15.0}, {0.4, 0.4});
  EXPECT_NEAR(temps.node_in[0], temps.node_in[1], 1e-9);
  EXPECT_NEAR(temps.node_out[0], temps.node_out[1], 1e-9);
  // Asymmetric power breaks the symmetry in the right direction.
  const auto skewed = model.solve({15.0}, {0.7, 0.1});
  EXPECT_GT(skewed.node_out[0], skewed.node_out[1]);
}

// ---- Simplex stress. ----

TEST(LpStress, LargerRandomInstancesStaySane) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    solver::LpProblem lp;
    const std::size_t n = 30, m = 20;
    for (std::size_t v = 0; v < n; ++v) {
      const double lo = rng.uniform(-1.0, 0.0);
      const double hi = lo + rng.uniform(0.5, 3.0);
      lp.add_variable(lo, hi, rng.uniform(-1.0, 1.0));
    }
    for (std::size_t r = 0; r < m; ++r) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.next_double() < 0.4) terms.emplace_back(v, rng.uniform(-1.0, 1.0));
      }
      lp.add_constraint(std::move(terms), solver::Relation::LessEq,
                        rng.uniform(0.0, 4.0));
    }
    const auto sol = solve_lp(lp);
    ASSERT_NE(sol.status, solver::LpStatus::IterLimit);
    if (sol.optimal()) {
      EXPECT_LT(lp.max_violation(sol.x), 1e-7);
      EXPECT_NEAR(lp.objective_value(sol.x), sol.objective, 1e-9);
    }
  }
}

TEST(LpStress, BadlyScaledCoefficients) {
  // max x + y with one row in units of 1e6 and one in 1e-6.
  solver::LpProblem lp;
  const auto x = lp.add_variable(0, solver::kLpInfinity, 1);
  const auto y = lp.add_variable(0, solver::kLpInfinity, 1);
  lp.add_constraint({{x, 1e6}, {y, 1e6}}, solver::Relation::LessEq, 3e6);
  lp.add_constraint({{x, 1e-6}, {y, 2e-6}}, solver::Relation::LessEq, 5e-6);
  const auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  // Binding: x + 2y <= 5 (scaled), x + y <= 3 -> optimum x=3,y=0 value 3?
  // check: x=3,y=0 satisfies both (3<=3, 3e-6<=5e-6 -> 3<=5 ok). obj=3.
  EXPECT_NEAR(sol.objective, 3.0, 1e-6);
}

TEST(LpStress, ManyBoundFlips) {
  // Objective favors upper bounds; single coupling row forces tradeoffs.
  solver::LpProblem lp;
  std::vector<std::pair<std::size_t, double>> terms;
  const std::size_t n = 60;
  for (std::size_t v = 0; v < n; ++v) {
    const auto var = lp.add_variable(0.0, 1.0, 1.0 + 0.01 * static_cast<double>(v));
    terms.emplace_back(var, 1.0);
  }
  lp.add_constraint(std::move(terms), solver::Relation::LessEq, 25.0);
  const auto sol = solve_lp(lp);
  ASSERT_TRUE(sol.optimal());
  // Greedy: the 25 highest-coefficient variables at their upper bound.
  double expected = 0.0;
  for (std::size_t v = n - 25; v < n; ++v) expected += 1.0 + 0.01 * static_cast<double>(v);
  EXPECT_NEAR(sol.objective, expected, 1e-9);
}

// ---- Cross-technique invariant chains. ----

TEST(InvariantChain, RewardOrderingAcrossTechniques) {
  // arrival-value bound >= three-stage and baseline; both verified feasible.
  for (std::uint64_t seed : {501, 502}) {
    const auto scenario = test::make_small_scenario(seed, 10, 2);
    const thermal::HeatFlowModel model(scenario.dc);
    double arrival_value = 0.0;
    for (const auto& t : scenario.dc.task_types) {
      arrival_value += t.reward * t.arrival_rate;
    }
    const core::ThreeStageAssigner three(scenario.dc, model);
    const core::BaselineAssigner base(scenario.dc, model);
    const auto a = three.assign();
    const auto b = base.assign();
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_LE(a.reward_rate, arrival_value + 1e-6);
    EXPECT_LE(b.reward_rate, arrival_value + 1e-6);
    EXPECT_TRUE(core::verify_assignment(scenario.dc, model, a).ok());
    EXPECT_TRUE(core::verify_assignment(scenario.dc, model, b).ok());
  }
}

TEST(InvariantChain, RaisingRedlinesNeverHurts) {
  auto scenario = test::make_small_scenario(503, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const core::ThreeStageAssigner three(scenario.dc, model);
  const auto tight = three.assign();
  scenario.dc.redline_node_c += 2.0;
  const auto loose = three.assign();
  ASSERT_TRUE(tight.feasible && loose.feasible);
  EXPECT_GE(loose.reward_rate, tight.reward_rate - 1e-6);
}

TEST(InvariantChain, ColderRedlineEventuallyInfeasible) {
  auto scenario = test::make_small_scenario(504, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const core::ThreeStageAssigner three(scenario.dc, model);
  scenario.dc.redline_node_c = 5.0;  // below any achievable setpoint mix
  EXPECT_FALSE(three.assign().feasible);
}

TEST(InvariantChain, HeterogeneousCracsSupported) {
  // The paper assumes homogeneous CRACs; the model does not. Give the two
  // units different flows (total still balancing the node flows) and check
  // the pipeline works and can pick distinct setpoints.
  auto dc = test::make_tiny_dc({0, 0, 1, 1, 0, 1, 0, 0, 1, 0}, 2);
  const double total = dc.total_node_flow();
  dc.cracs[0].flow_m3s = 0.7 * total;
  dc.cracs[1].flow_m3s = 0.3 * total;
  dc.alpha = test::proportional_alpha(dc);
  // Borrow workload from a generated scenario of the same shape.
  const auto scenario = test::make_small_scenario(507, 10, 2);
  dc.ecs = scenario.dc.ecs;
  dc.task_types = scenario.dc.task_types;
  dc.p_const_kw = scenario.dc.p_const_kw;

  const thermal::HeatFlowModel model(dc);
  const core::ThreeStageAssigner three(dc, model);
  const auto a = three.assign();
  ASSERT_TRUE(a.feasible);
  EXPECT_TRUE(core::verify_assignment(dc, model, a).ok());
}

// ---- Stage-1 end-to-end properties (parallel setpoint sweep). ----

TEST(Stage1Properties, SolvedPointRespectsBudgetAndRedlines) {
  for (std::uint64_t seed : {601, 602, 603, 604}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    const auto scenario = test::make_small_scenario(seed, 12, 2);
    const thermal::HeatFlowModel model(scenario.dc);
    const core::Stage1Solver solver(scenario.dc, model);
    const auto r = solver.solve();  // default options: parallel sweep
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.compute_power_kw + r.crac_power_kw,
              scenario.dc.p_const_kw + 1e-6);
    // Re-derive the steady state independently and check every redline.
    std::vector<double> node_power(scenario.dc.num_nodes());
    for (std::size_t j = 0; j < node_power.size(); ++j) {
      node_power[j] = r.node_core_power_kw[j] +
                      scenario.dc.node_type(j).base_power_kw();
    }
    const auto temps = model.solve(r.crac_out_c, node_power);
    EXPECT_TRUE(model.within_redlines(temps));
  }
}

TEST(Stage1Properties, ObjectiveMonotoneInPowerBudget) {
  // On a fixed candidate set (coarse full grid, no adaptive refinement) a
  // larger power budget can only relax each grid point's LP, so the Stage-1
  // objective must be monotone non-decreasing in Pconst, and feasibility,
  // once gained, must persist.
  auto scenario = test::make_small_scenario(605, 10, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const core::Stage1Solver solver(scenario.dc, model);
  core::Stage1Options options;
  options.full_grid = true;
  options.grid.coarse_samples = 5;
  options.grid.refine_rounds = 0;
  const double pconst = scenario.dc.p_const_kw;
  bool was_feasible = false;
  double prev_objective = 0.0;
  for (double scale : {0.6, 0.8, 1.0, 1.2, 1.4}) {
    SCOPED_TRACE(testing::Message() << "scale=" << scale);
    scenario.dc.p_const_kw = pconst * scale;
    const auto r = solver.solve(options);
    if (was_feasible) {
      ASSERT_TRUE(r.feasible);
      EXPECT_GE(r.objective, prev_objective - 1e-9);
    }
    if (r.feasible) {
      was_feasible = true;
      prev_objective = r.objective;
    }
  }
  EXPECT_TRUE(was_feasible);  // at least the generated Pconst must work
}

TEST(Stage1Properties, ThreadCountDoesNotChangeTheResult) {
  for (std::uint64_t seed : {606, 607}) {
    const auto scenario = test::make_small_scenario(seed, 10, 2);
    const thermal::HeatFlowModel model(scenario.dc);
    const core::Stage1Solver solver(scenario.dc, model);
    for (bool full_grid : {false, true}) {
      core::Stage1Options options;
      options.full_grid = full_grid;
      options.threads = 1;
      const auto serial = solver.solve(options);
      ASSERT_TRUE(serial.feasible);
      for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed << " full_grid="
                                        << full_grid << " threads=" << threads);
        options.threads = threads;
        const auto parallel = solver.solve(options);
        EXPECT_EQ(parallel.feasible, serial.feasible);
        EXPECT_EQ(parallel.crac_out_c, serial.crac_out_c);  // exact, bit-wise
        EXPECT_EQ(parallel.objective, serial.objective);
        EXPECT_EQ(parallel.node_core_power_kw, serial.node_core_power_kw);
        EXPECT_EQ(parallel.compute_power_kw, serial.compute_power_kw);
        EXPECT_EQ(parallel.crac_power_kw, serial.crac_power_kw);
        EXPECT_EQ(parallel.lp_solves, serial.lp_solves);
      }
    }
  }
}

TEST(InvariantChain, RewardScalesWithUniformRewardScaling) {
  // Multiplying every task reward by c multiplies the optimal reward rate
  // by c (the feasible region is unchanged; only the objective scales).
  auto scenario = test::make_small_scenario(505, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  const core::ThreeStageAssigner three(scenario.dc, model);
  const auto before = three.assign();
  for (auto& t : scenario.dc.task_types) t.reward *= 3.0;
  const auto after = three.assign();
  ASSERT_TRUE(before.feasible && after.feasible);
  EXPECT_NEAR(after.reward_rate, 3.0 * before.reward_rate,
              1e-6 * after.reward_rate);
}

}  // namespace
}  // namespace tapo
