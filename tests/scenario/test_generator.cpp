#include "scenario/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "thermal/crossinterference.h"

namespace tapo::scenario {
namespace {

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.num_nodes = 12;
  config.num_cracs = 2;
  config.seed = seed;
  return config;
}

TEST(Generator, ProducesCompleteScenario) {
  const auto scenario = generate_scenario(small_config(1));
  ASSERT_TRUE(scenario.has_value());
  const auto& dc = scenario->dc;
  EXPECT_EQ(dc.num_nodes(), 12u);
  EXPECT_EQ(dc.num_cracs(), 2u);
  EXPECT_EQ(dc.num_task_types(), 8u);
  EXPECT_EQ(dc.total_cores(), 12u * 32u);
  EXPECT_GT(dc.p_const_kw, 0.0);
  EXPECT_TRUE(scenario->bounds.feasible);
}

TEST(Generator, ReproducibleForSameSeed) {
  const auto a = generate_scenario(small_config(5));
  const auto b = generate_scenario(small_config(5));
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->dc.p_const_kw, b->dc.p_const_kw);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a->dc.task_types[i].arrival_rate,
                     b->dc.task_types[i].arrival_rate);
    EXPECT_DOUBLE_EQ(a->dc.task_types[i].relative_deadline,
                     b->dc.task_types[i].relative_deadline);
  }
  for (std::size_t i = 0; i < a->dc.alpha.rows(); ++i) {
    for (std::size_t j = 0; j < a->dc.alpha.cols(); ++j) {
      EXPECT_DOUBLE_EQ(a->dc.alpha(i, j), b->dc.alpha(i, j));
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_scenario(small_config(1));
  const auto b = generate_scenario(small_config(2));
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->dc.task_types[0].arrival_rate, b->dc.task_types[0].arrival_rate);
}

TEST(Generator, PconstBetweenBounds) {
  const auto scenario = generate_scenario(small_config(3));
  ASSERT_TRUE(scenario);
  EXPECT_GT(scenario->dc.p_const_kw, scenario->bounds.pmin_kw);
  EXPECT_LT(scenario->dc.p_const_kw, scenario->bounds.pmax_kw);
  EXPECT_NEAR(scenario->dc.p_const_kw,
              0.5 * (scenario->bounds.pmin_kw + scenario->bounds.pmax_kw), 1e-9);
}

TEST(Generator, EcsMonotoneInPState) {
  const auto scenario = generate_scenario(small_config(4));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    for (std::size_t j = 0; j < dc.node_types.size(); ++j) {
      for (std::size_t k = 1; k < dc.node_types[j].num_active_pstates(); ++k) {
        EXPECT_LE(dc.ecs.ecs(i, j, k), dc.ecs.ecs(i, j, k - 1) + 1e-12);
      }
      EXPECT_DOUBLE_EQ(dc.ecs.ecs(i, j, dc.node_types[j].off_state()), 0.0);
    }
  }
}

TEST(Generator, TaskEasinessDoublesPerType) {
  // Section VI.C: avg ECS of type i is half that of type i+1; with the
  // +-10% affinity noise the ratio lands near 0.5.
  const auto scenario = generate_scenario(small_config(6));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  for (std::size_t i = 0; i + 1 < dc.num_task_types(); ++i) {
    double avg_i = 0.0, avg_next = 0.0;
    for (std::size_t j = 0; j < dc.node_types.size(); ++j) {
      avg_i += dc.ecs.ecs(i, j, 0);
      avg_next += dc.ecs.ecs(i + 1, j, 0);
    }
    EXPECT_NEAR(avg_i / avg_next, 0.5, 0.12);
  }
}

TEST(Generator, NodeTypePerformanceRatio) {
  const auto scenario = generate_scenario(small_config(7));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  double type0 = 0.0, type1 = 0.0;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    type0 += dc.ecs.ecs(i, 0, 0);
    type1 += dc.ecs.ecs(i, 1, 0);
  }
  EXPECT_NEAR(type0 / type1, 0.6, 0.08);
}

TEST(Generator, RewardIsReciprocalOfMeanEcs) {
  const auto scenario = generate_scenario(small_config(8));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    const double avg = (dc.ecs.ecs(i, 0, 0) + dc.ecs.ecs(i, 1, 0)) / 2.0;
    EXPECT_NEAR(dc.task_types[i].reward, 1.0 / avg, 1e-12);
  }
}

TEST(Generator, DeadlineGuaranteesSomeCoreCanServe) {
  // Eq. 14 makes m_i >= 1.5/MaxECS_i: at least P-state 0 of the best node
  // type meets every deadline.
  const auto scenario = generate_scenario(small_config(9));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    bool any = false;
    for (std::size_t j = 0; j < dc.node_types.size(); ++j) {
      any |= dc.ecs.can_meet_deadline(i, j, 0, dc.task_types[i].relative_deadline);
    }
    EXPECT_TRUE(any) << "task " << i;
  }
}

TEST(Generator, ArrivalRatesNearFullCapacity) {
  // Eq. 15-16: lambda_i ~ SumECS_i +- 30%.
  const auto scenario = generate_scenario(small_config(10));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  for (std::size_t i = 0; i < dc.num_task_types(); ++i) {
    double sum_ecs = 0.0;
    for (std::size_t k = 0; k < dc.total_cores(); ++k) {
      sum_ecs += dc.ecs.ecs(i, dc.core_type(k), 0);
    }
    sum_ecs /= static_cast<double>(dc.num_task_types());
    EXPECT_GE(dc.task_types[i].arrival_rate, sum_ecs * 0.69);
    EXPECT_LE(dc.task_types[i].arrival_rate, sum_ecs * 1.31);
  }
}

TEST(Generator, CracFlowBalancesNodeFlow) {
  const auto scenario = generate_scenario(small_config(11));
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  double crac_flow = 0.0;
  for (const auto& crac : dc.cracs) crac_flow += crac.flow_m3s;
  EXPECT_NEAR(crac_flow, dc.total_node_flow(), 1e-12);
}

TEST(Generator, AlphaSatisfiesAppendixB) {
  // 10 nodes = two full racks: the strict Table-II ranges are feasible.
  ScenarioConfig config = small_config(12);
  config.num_nodes = 10;
  const auto scenario = generate_scenario(config);
  ASSERT_TRUE(scenario);
  const auto& dc = scenario->dc;
  std::vector<double> flows;
  for (std::size_t e = 0; e < dc.num_entities(); ++e) {
    flows.push_back(dc.entity_flow(e));
  }
  EXPECT_TRUE(thermal::verify_cross_interference(dc.alpha, dc.layout, flows).ok);
}

TEST(Generator, NodeMixUsesBothTypes) {
  ScenarioConfig config = small_config(13);
  config.num_nodes = 30;
  const auto scenario = generate_scenario(config);
  ASSERT_TRUE(scenario);
  std::set<std::size_t> types;
  for (const auto& node : scenario->dc.nodes) types.insert(node.type);
  EXPECT_EQ(types.size(), 2u);
}

TEST(Generator, StaticFractionPropagatesToNodeTypes) {
  ScenarioConfig config = small_config(14);
  config.static_fraction = 0.2;
  const auto scenario = generate_scenario(config);
  ASSERT_TRUE(scenario);
  const auto& spec = scenario->dc.node_types[0];
  EXPECT_NEAR(spec.core_static_power_kw(0) / spec.core_power_kw(0), 0.2, 1e-12);
}

TEST(Generator, PaperScaleSucceeds) {
  ScenarioConfig config;
  config.num_nodes = 150;
  config.num_cracs = 3;
  config.seed = 99;
  const auto scenario = generate_scenario(config);
  ASSERT_TRUE(scenario.has_value());
  EXPECT_EQ(scenario->dc.total_cores(), 4800u);
}

// Pins generation feasibility at the bench layouts (bench/solver_perf.cpp
// bench_cracs: one CRAC per ~50 nodes at 100+). The generator splits total
// node airflow evenly across CRACs, so a starved CRAC count (e.g. 3 units
// for 500 nodes) collapses the feasible setpoint region; this test is the
// tier-1 guard that the published scaling keeps every bench size feasible.
// Capped at 500 nodes for suite speed — the 1000/1500-node nightly benches
// abort on infeasible generation, covering the larger sizes.
TEST(Generator, FeasibleAtBenchSizes) {
  struct Layout {
    std::size_t nodes, cracs;
  };
  const Layout layouts[] = {{40, 2}, {120, 3}, {150, 3}, {500, 10}};
  for (const auto& layout : layouts) {
    ScenarioConfig config;
    config.num_nodes = layout.nodes;
    config.num_cracs = layout.cracs;
    config.seed = 12;  // the bench seed
    const auto scenario = generate_scenario(config);
    ASSERT_TRUE(scenario.has_value())
        << layout.nodes << " nodes / " << layout.cracs << " CRACs";
    EXPECT_TRUE(scenario->bounds.feasible)
        << layout.nodes << " nodes / " << layout.cracs << " CRACs";
  }
}

}  // namespace
}  // namespace tapo::scenario
