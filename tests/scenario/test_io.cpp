#include "scenario/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/assigner.h"
#include "testutil.h"
#include "thermal/heatflow.h"

namespace tapo::scenario {
namespace {

dc::DataCenter generated_dc() { return test::make_small_scenario(801, 10, 2).dc; }

TEST(Io, RoundTripPreservesStructure) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  const LoadResult loaded = load_data_center(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;

  EXPECT_EQ(loaded.dc.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.dc.num_cracs(), original.num_cracs());
  EXPECT_EQ(loaded.dc.total_cores(), original.total_cores());
  EXPECT_EQ(loaded.dc.node_types.size(), original.node_types.size());
  EXPECT_EQ(loaded.dc.num_task_types(), original.num_task_types());
  for (std::size_t j = 0; j < original.num_nodes(); ++j) {
    EXPECT_EQ(loaded.dc.nodes[j].type, original.nodes[j].type);
    EXPECT_EQ(loaded.dc.layout.nodes[j].rack, original.layout.nodes[j].rack);
    EXPECT_EQ(loaded.dc.layout.nodes[j].label, original.layout.nodes[j].label);
    EXPECT_EQ(loaded.dc.layout.nodes[j].hot_aisle,
              original.layout.nodes[j].hot_aisle);
  }
}

TEST(Io, RoundTripIsBitExact) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  const LoadResult loaded = load_data_center(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;

  EXPECT_EQ(loaded.dc.p_const_kw, original.p_const_kw);  // exact, hex floats
  EXPECT_EQ(loaded.dc.redline_node_c, original.redline_node_c);
  for (std::size_t i = 0; i < original.alpha.rows(); ++i) {
    for (std::size_t j = 0; j < original.alpha.cols(); ++j) {
      EXPECT_EQ(loaded.dc.alpha(i, j), original.alpha(i, j));
    }
  }
  for (std::size_t i = 0; i < original.num_task_types(); ++i) {
    EXPECT_EQ(loaded.dc.task_types[i].reward, original.task_types[i].reward);
    EXPECT_EQ(loaded.dc.task_types[i].relative_deadline,
              original.task_types[i].relative_deadline);
    EXPECT_EQ(loaded.dc.task_types[i].arrival_rate,
              original.task_types[i].arrival_rate);
    for (std::size_t j = 0; j < original.node_types.size(); ++j) {
      for (std::size_t k = 0; k < original.ecs.num_states(); ++k) {
        EXPECT_EQ(loaded.dc.ecs.ecs(i, j, k), original.ecs.ecs(i, j, k));
      }
    }
  }
  for (std::size_t t = 0; t < original.node_types.size(); ++t) {
    EXPECT_EQ(loaded.dc.node_types[t].name(), original.node_types[t].name());
    EXPECT_EQ(loaded.dc.node_types[t].base_power_kw(),
              original.node_types[t].base_power_kw());
    for (std::size_t k = 0; k < original.node_types[t].num_active_pstates(); ++k) {
      EXPECT_EQ(loaded.dc.node_types[t].core_power_kw(k),
                original.node_types[t].core_power_kw(k));
    }
  }
}

TEST(Io, RoundTripProducesIdenticalAssignments) {
  // The acid test: the pipeline result on the loaded copy is bit-identical.
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  const LoadResult loaded = load_data_center(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;

  const thermal::HeatFlowModel model_a(original);
  const thermal::HeatFlowModel model_b(loaded.dc);
  const core::Assignment a = core::ThreeStageAssigner(original, model_a).assign();
  const core::Assignment b = core::ThreeStageAssigner(loaded.dc, model_b).assign();
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.reward_rate, b.reward_rate);
  EXPECT_EQ(a.core_pstate, b.core_pstate);
}

TEST(Io, NamesWithSpacesSurvive) {
  const auto original = generated_dc();  // "HP ProLiant DL785 G5" has spaces
  std::stringstream buffer;
  save_data_center(original, buffer);
  const LoadResult loaded = load_data_center(buffer);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.dc.node_types[0].name(), "HP ProLiant DL785 G5");
}

TEST(Io, SecondSaveIsIdentical) {
  const auto original = generated_dc();
  std::stringstream first, second;
  save_data_center(original, first);
  const LoadResult loaded = load_data_center(first);
  ASSERT_TRUE(loaded.ok);
  save_data_center(loaded.dc, second);
  // Compare documents: save(load(save(x))) == save(x).
  std::stringstream again;
  save_data_center(original, again);
  EXPECT_EQ(second.str(), again.str());
}

TEST(Io, RejectsWrongMagic) {
  std::stringstream buffer("not-a-tapo-file v1");
  const LoadResult loaded = load_data_center(buffer);
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
}

TEST(Io, RejectsTruncatedDocument) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  std::string doc = buffer.str();
  doc.resize(doc.size() / 2);
  std::stringstream truncated(doc);
  EXPECT_FALSE(load_data_center(truncated).ok);
}

TEST(Io, RejectsInconsistentSizes) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  std::string doc = buffer.str();
  // Corrupt the node count (nodes <N> line).
  const auto pos = doc.find("nodes ");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 8, "nodes 3\n");
  std::stringstream corrupted(doc);
  EXPECT_FALSE(load_data_center(corrupted).ok);
}

TEST(Io, RejectsBadNodeTypeReference) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  std::string doc = buffer.str();
  const auto pos = doc.find("nodes ");
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = doc.find('\n', pos);
  doc.insert(line_end + 1, "99 ");
  std::stringstream corrupted(doc);
  const auto loaded = load_data_center(corrupted);
  EXPECT_FALSE(loaded.ok);
}

TEST(Io, FileHelpersWork) {
  const auto original = generated_dc();
  const std::string path = "/tmp/tapo_io_test_dc.txt";
  ASSERT_TRUE(save_data_center_file(original, path));
  const LoadResult loaded = load_data_center_file(path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.dc.num_nodes(), original.num_nodes());
  std::remove(path.c_str());
}

TEST(Io, MissingFileReportsError) {
  const LoadResult loaded = load_data_center_file("/nonexistent/nowhere.txt");
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("cannot open"), std::string::npos);
  EXPECT_EQ(loaded.status.code(), util::StatusCode::kNotFound);
}

TEST(Io, ParseErrorsCarryLineNumbers) {
  const auto original = generated_dc();
  std::stringstream buffer;
  save_data_center(original, buffer);
  std::string doc = buffer.str();
  // Replace the node count with a non-number token.
  const auto pos = doc.find("nodes ");
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, 7, "nodes x");
  std::stringstream corrupted(doc);
  const LoadResult loaded = load_data_center(corrupted);
  ASSERT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status.message().find("line "), std::string::npos);
  // The mirrored fields agree with the status.
  EXPECT_EQ(loaded.error, loaded.status.message());
}

TEST(Io, FileErrorsArePrefixedWithThePath) {
  const auto original = generated_dc();
  const std::string path = "/tmp/tapo_io_test_corrupt.txt";
  {
    std::stringstream buffer;
    save_data_center(original, buffer);
    std::string doc = buffer.str();
    doc.resize(doc.size() / 3);
    std::ofstream os(path);
    os << doc;
  }
  const LoadResult loaded = load_data_center_file(path);
  ASSERT_FALSE(loaded.ok);
  EXPECT_EQ(loaded.error.find(path), 0u);
  std::remove(path.c_str());
}

TEST(Io, PercentEncodedNamesRoundTrip) {
  auto original = generated_dc();
  const dc::NodeTypeSpec& base = original.node_types[0];
  std::vector<dc::PStateSpec> states;
  for (std::size_t k = 0; k < base.num_active_pstates(); ++k) {
    states.push_back(base.power_model().state(k));
  }
  // Percent signs, spaces and a newline all have to survive the line-oriented
  // format via percent-encoding.
  const std::string tricky = "100% weird\nname";
  original.node_types[0] = dc::NodeTypeSpec(
      tricky, base.base_power_kw(), base.cores_per_node(), base.p0_power_kw(),
      base.static_fraction(), states, base.airflow_m3s());

  std::stringstream buffer;
  save_data_center(original, buffer);
  const LoadResult loaded = load_data_center(buffer);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.dc.node_types[0].name(), tricky);
}

}  // namespace
}  // namespace tapo::scenario
