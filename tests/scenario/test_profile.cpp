// "tapo-scenarios v1" schema: validator units, serialize/parse round-trips,
// and a seed-driven mutation fuzz over the parser. The fuzz cases run under
// the ASan+UBSan CI job via this suite: every mutation must produce a
// line-numbered InvalidArgument or a profile that revalidates — never a
// crash or a silently-accepted corrupt document.
#include "scenario/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tapo::scenario {
namespace {

// Index in [0, n); n == 0 yields 0 (callers guard emptiness themselves).
std::size_t pick(util::Rng& rng, std::size_t n) {
  if (n == 0) return 0;
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

ScenarioProfile valid_profile() {
  ScenarioProfile p;
  p.name = "unit-profile";
  return p;
}

ScenarioProfile busy_profile() {
  // Every optional section present, so mutations can reach all keys.
  ScenarioProfile p;
  p.name = "busy profile \xf0\x9f\x8c\xa1";  // decoded name may hold anything
  p.nodes = 64;
  p.cracs = 3;
  p.task_types = 12;
  p.seed = 99;
  p.static_fraction = 0.42;
  p.v_ecs = 0.2;
  p.v_prop = 0.35;
  p.v_arrival = 0.15;
  p.pconst_factor = 0.65;
  p.node_mix = {0.25, 0.75};
  p.redline_node_c = 27.5;
  p.redline_crac_c = 42.0;
  p.psi = 25.0;
  p.deadline_check = false;
  p.policy = ScenarioProfile::Policy::kEarliestFinish;
  p.arrival.kind = ArrivalOverlay::Kind::kMmpp;
  p.arrival.burst_multiplier = 5.0;
  p.arrival.mean_phase_s = 17.0;
  p.arrival.burst_duty = 0.3;
  FaultStorm storm;
  storm.seed = 7;
  storm.horizon_s = 90.0;
  storm.node_failures = 5;
  storm.node_repair_after_s = 25.0;
  storm.crac_derates = 1;
  storm.crac_capacity_fraction = 0.55;
  storm.crac_repair_after_s = 30.0;
  storm.power_cap_fraction = 0.85;
  p.faults = storm;
  p.sim.duration_s = 75.0;
  p.sim.warmup_s = 10.0;
  p.sim.seed = 11;
  p.sim.samples = 48;
  ReplanSection replan;
  replan.cadence_s = 18.0;
  replan.tracking_threshold = 0.35;
  replan.max_lp_iterations = 250;
  p.replan = replan;
  return p;
}

// Second rich document: trace overlay present (busy_profile cannot carry one
// because its mmpp arrival conflicts), so the fuzz reaches the trace keys.
ScenarioProfile drift_profile() {
  ScenarioProfile p;
  p.name = "drift-profile";
  p.nodes = 48;
  p.arrival.kind = ArrivalOverlay::Kind::kScale;
  p.arrival.scale = 1.5;
  p.trace.kind = TraceOverlay::Kind::kBurst;
  p.trace.start_s = 22.0;
  p.trace.magnitude = 4.0;
  p.trace.duration_s = 12.0;
  p.trace.segments = 10;
  FaultStorm storm;
  storm.node_failures = 2;
  p.faults = storm;
  ReplanSection replan;
  replan.cadence_s = 20.0;
  replan.tracking_threshold = 0.0;
  p.replan = replan;
  return p;
}

TEST(Profile, DefaultsValidate) {
  EXPECT_TRUE(valid_profile().validate().ok());
  EXPECT_TRUE(busy_profile().validate().ok());
  EXPECT_TRUE(drift_profile().validate().ok());
}

TEST(Profile, ValidationNamesTheField) {
  struct Case {
    void (*mutate)(ScenarioProfile&);
    const char* fragment;
  };
  const Case cases[] = {
      {[](ScenarioProfile& p) { p.name.clear(); }, "name"},
      {[](ScenarioProfile& p) { p.nodes = 0; }, "nodes"},
      {[](ScenarioProfile& p) { p.cracs = 11; }, "cracs"},
      {[](ScenarioProfile& p) { p.task_types = 65; }, "task_types"},
      {[](ScenarioProfile& p) { p.static_fraction = 1.0; }, "static_fraction"},
      {[](ScenarioProfile& p) { p.v_ecs = -0.1; }, "v_ecs"},
      {[](ScenarioProfile& p) { p.v_prop = 2.0; }, "v_prop"},
      {[](ScenarioProfile& p) { p.v_arrival = 1.0; }, "v_arrival"},
      {[](ScenarioProfile& p) { p.pconst_factor = 1.5; }, "pconst_factor"},
      {[](ScenarioProfile& p) { p.node_mix = {1.0}; }, "node_mix"},
      {[](ScenarioProfile& p) { p.node_mix = {0.0, 0.0}; }, "node_mix"},
      {[](ScenarioProfile& p) { p.redline_node_c = 0.0; }, "redline"},
      {[](ScenarioProfile& p) { p.psi = 0.0; }, "psi"},
      {[](ScenarioProfile& p) { p.psi = 101.0; }, "psi"},
      {[](ScenarioProfile& p) {
         p.arrival.kind = ArrivalOverlay::Kind::kScale;
         p.arrival.scale = 0.0;
       },
       "scale"},
      {[](ScenarioProfile& p) {
         p.arrival.kind = ArrivalOverlay::Kind::kMmpp;
         p.arrival.burst_duty = 1.0;
       },
       "duty"},
      {[](ScenarioProfile& p) {
         FaultStorm f;
         f.node_failures = p.nodes + 1;
         p.faults = f;
       },
       "node_failures"},
      {[](ScenarioProfile& p) {
         FaultStorm f;
         f.power_cap_fraction = 0.0;
         p.faults = f;
       },
       "power_cap"},
      {[](ScenarioProfile& p) { p.sim.duration_s = 0.0; }, "duration"},
      {[](ScenarioProfile& p) { p.sim.warmup_s = p.sim.duration_s; },
       "warmup"},
      {[](ScenarioProfile& p) { p.sim.samples = 1; }, "samples"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kDiurnal;
         p.trace.amplitude = 1.5;
       },
       "amplitude"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kDiurnal;
         p.trace.segments = 1;
       },
       "segments"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kFlash;
         p.trace.magnitude = 0.5;
       },
       "magnitude"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kFlash;
         p.trace.start_s = -1.0;
       },
       "start"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kBurst;
         p.trace.duration_s = 0.0;
       },
       "duration"},
      {[](ScenarioProfile& p) {
         p.trace.kind = TraceOverlay::Kind::kDiurnal;
         p.arrival.kind = ArrivalOverlay::Kind::kMmpp;
       },
       "mmpp"},
      {[](ScenarioProfile& p) {
         ReplanSection r;
         r.cadence_s = 0.0;
         p.replan = r;
       },
       "cadence"},
      {[](ScenarioProfile& p) {
         ReplanSection r;
         r.tracking_threshold =
             std::numeric_limits<double>::quiet_NaN();
         p.replan = r;
       },
       "tracking"},
  };
  for (const Case& c : cases) {
    ScenarioProfile p = valid_profile();
    c.mutate(p);
    const util::Status s = p.validate();
    EXPECT_FALSE(s.ok()) << "expected rejection mentioning " << c.fragment;
    EXPECT_NE(s.message().find(c.fragment), std::string::npos)
        << "got: " << s.message();
  }
}

TEST(Profile, SerializeParseRoundTripIsExact) {
  for (const ScenarioProfile& original :
       {valid_profile(), busy_profile(), drift_profile()}) {
    const std::string text = serialize_profile(original);
    util::StatusOr<ScenarioProfile> parsed = parse_profile(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(*parsed, original);
    // Bit-exact: re-serializing the parse reproduces the document.
    EXPECT_EQ(serialize_profile(*parsed), text);
  }
}

TEST(Profile, AwkwardDoublesSurviveRoundTrip) {
  ScenarioProfile p = valid_profile();
  p.static_fraction = 0.1 + 0.2;  // classic 0.30000000000000004
  p.v_prop = 1.0 / 3.0;
  p.psi = 99.999999999999986;
  util::StatusOr<ScenarioProfile> parsed =
      parse_profile(serialize_profile(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->static_fraction, p.static_fraction);
  EXPECT_EQ(parsed->v_prop, p.v_prop);
  EXPECT_EQ(parsed->psi, p.psi);
}

TEST(Profile, CommentsAndBlankLinesAreSkipped) {
  const std::string text =
      "# leading comment\n"
      "\n"
      "tapo-scenarios v1\n"
      "# interior comment\n"
      "name commented\n"
      "\n"
      "end\n";
  util::StatusOr<ScenarioProfile> parsed = parse_profile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->name, "commented");
}

TEST(Profile, ParserErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* line;  // "line N" expected in the message
  };
  const Case cases[] = {
      {"tapo-scenarios v2\nname x\nend\n", "line 1"},
      {"tapo-scenarios v1\nname x\nnodes banana\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nnodes 4\nnodes 5\nend\n", "line 4"},
      {"tapo-scenarios v1\nname x\nwat 3\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nend\nname y\n", "line 4"},
      {"tapo-scenarios v1\nname x\npsi\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nseed -3\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\narrival warp 2\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\ntrace square 2 3\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\ntrace diurnal 0.5\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nreplan 20 0.5\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nreplan 20 0.5 -1\nend\n", "line 3"},
      {"tapo-scenarios v1\nname x\nnodes 4\n", "line 3"},  // missing end
  };
  for (const Case& c : cases) {
    util::StatusOr<ScenarioProfile> parsed = parse_profile(c.text);
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.line), std::string::npos)
        << "wanted '" << c.line << "' in: " << parsed.status().to_string();
  }
}

// Seed-driven mutation fuzz: truncations, line deletions, token swaps, digit
// garbling, and duplicated lines over a rich valid document. The parser must
// return InvalidArgument (line-numbered) or a profile that passes
// validate() — and must never crash, which ASan/UBSan turns into a hard
// failure in CI.
TEST(Profile, MutationFuzzNeverCrashesOrSilentlyAccepts) {
  const std::string bases[] = {serialize_profile(busy_profile()),
                               serialize_profile(drift_profile())};
  util::Rng rng(20260807);
  std::size_t rejected = 0, accepted = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text = bases[iter % 2];
    const std::size_t kind = pick(rng, 6);
    switch (kind) {
      case 0:  // truncate at a random byte
        text.resize(pick(rng, text.size() + 1));
        break;
      case 1: {  // delete one line
        std::vector<std::string> lines;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= text.size(); ++i) {
          if (i == text.size() || text[i] == '\n') {
            lines.push_back(text.substr(start, i - start));
            start = i + 1;
          }
        }
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(pick(rng, lines.size())));
        text.clear();
        for (const std::string& l : lines) text += l + "\n";
        break;
      }
      case 2: {  // garble one byte
        if (!text.empty()) {
          const std::size_t at = pick(rng, text.size());
          text[at] = static_cast<char>('!' + pick(rng, 94));
        }
        break;
      }
      case 3: {  // duplicate a random line at the end (before nothing)
        const std::size_t cut = pick(rng, text.size());
        const std::size_t nl = text.find('\n', cut);
        const std::size_t begin = text.rfind('\n', cut);
        const std::string line = text.substr(
            begin == std::string::npos ? 0 : begin + 1,
            (nl == std::string::npos ? text.size() : nl) -
                (begin == std::string::npos ? 0 : begin + 1));
        text += line + "\n";
        break;
      }
      case 4: {  // out-of-range numeric splice
        const char* const splices[] = {"nodes 0\n", "cracs 99\n",
                                       "psi 1e300\n", "psi nan\n",
                                       "static_fraction -1\n",
                                       "sim 10 20 1 4\n"};
        text.insert(text.find("name"), splices[pick(rng, 6)]);
        break;
      }
      default: {  // shuffle: move the header somewhere else
        text = text.substr(18) + text.substr(0, 18);
        break;
      }
    }
    util::StatusOr<ScenarioProfile> parsed = parse_profile(text);
    if (parsed.ok()) {
      ++accepted;
      // Anything the parser accepts must satisfy the validator; a corrupt
      // document that parses clean is a silent acceptance bug.
      EXPECT_TRUE(parsed->validate().ok()) << text;
    } else {
      ++rejected;
      EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
          << parsed.status().to_string();
    }
  }
  // The mutations are aggressive: most must be rejected, and a few benign
  // ones (e.g. garbling a digit into another digit) may survive.
  EXPECT_GT(rejected, 2000u);
  EXPECT_GT(accepted, 0u);
}

TEST(Profile, HashIsStableAndSemantic) {
  const ScenarioProfile a = busy_profile();
  ScenarioProfile b = a;
  EXPECT_EQ(profile_hash(a), profile_hash(b));
  b.seed += 1;
  EXPECT_NE(profile_hash(a), profile_hash(b));
  // The hash covers the canonical serialization, so a re-parsed profile
  // hashes identically (cosmetic formatting cannot invalidate a cache).
  util::StatusOr<ScenarioProfile> reparsed =
      parse_profile("# cosmetic\n" + serialize_profile(a) + "\n\n");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(profile_hash(*reparsed), profile_hash(a));
}

TEST(Profile, GeneratorEmitsValidUniqueProfiles) {
  ProfileGenConfig config;
  config.seed = 5;
  config.count = 24;
  const std::vector<ScenarioProfile> profiles =
      generate_random_profiles(config);
  ASSERT_EQ(profiles.size(), config.count);
  std::vector<std::string> names;
  for (const ScenarioProfile& p : profiles) {
    EXPECT_TRUE(p.validate().ok()) << p.name;
    EXPECT_LE(p.nodes, config.max_nodes);
    // Feasible by construction: below ~6 nodes per CRAC the Eq.-17 power
    // bounds go infeasible, and random draws carry no `expect infeasible`.
    EXPECT_LE(p.cracs, std::max<std::size_t>(1, p.nodes / 6)) << p.name;
    names.push_back(p.name);
    // Same format as the committed library: round-trips exactly.
    util::StatusOr<ScenarioProfile> parsed =
        parse_profile(serialize_profile(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  // Deterministic in the seed.
  const std::vector<ScenarioProfile> again = generate_random_profiles(config);
  ASSERT_EQ(again.size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(again[i], profiles[i]);
  }
}

}  // namespace
}  // namespace tapo::scenario
