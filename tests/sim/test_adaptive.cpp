#include "sim/adaptive.h"

#include <gtest/gtest.h>

#include <limits>

#include "sim/arrivals.h"
#include "testutil.h"

namespace tapo::sim {
namespace {

TEST(Adaptive, DegenerateDriftConfigsAreRejected) {
  DriftConfig drift;
  EXPECT_TRUE(drift.validate().ok());
  drift.epochs = 0;
  EXPECT_FALSE(drift.validate().ok());
  drift.epochs = 2;
  drift.epoch_seconds = 0.0;
  EXPECT_FALSE(drift.validate().ok());
  drift.epoch_seconds = 10.0;
  drift.drift_magnitude = -0.5;
  EXPECT_FALSE(drift.validate().ok());

  // The comparison propagates the validation status instead of aborting.
  auto scenario = test::make_small_scenario(309, 4, 1);
  const thermal::HeatFlowModel model(scenario.dc);
  const AdaptiveResult result =
      compare_static_vs_adaptive(scenario.dc, model, {}, drift);
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.epochs.empty());
}

TEST(Adaptive, ValidateRejectsEveryDegenerateFieldIncludingNested) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  {
    DriftConfig d;
    d.epoch_seconds = nan;
    EXPECT_FALSE(d.validate().ok());
  }
  {
    DriftConfig d;
    d.epoch_seconds = inf;
    EXPECT_FALSE(d.validate().ok());
  }
  {
    DriftConfig d;
    d.drift_magnitude = nan;
    EXPECT_FALSE(d.validate().ok());
  }
  // Nested SimOptions fields are validated up front too — a degenerate
  // scheduler or trace config must be rejected here, not once per epoch
  // mid-experiment. (Duration/warm-up are overridden per epoch, so a
  // degenerate duration in the nested options is NOT an error.)
  {
    DriftConfig d;
    d.sim.duration_seconds = -1.0;  // overridden by epoch_seconds
    EXPECT_TRUE(d.validate().ok());
  }
  {
    DriftConfig d;
    d.sim.scheduler.warmup_seconds = 0.0;  // 0/0 ATC estimate
    const util::Status s = d.validate();
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.to_string().find("scheduler"), std::string::npos);
  }
  {
    RateTrace bad;
    bad.per_type = {{{5.0, 1.0}}};  // first segment must start at 0
    DriftConfig d;
    d.sim.rate_trace = &bad;
    const util::Status s = d.validate();
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.to_string().find("rate trace"), std::string::npos);
  }
}

TEST(Adaptive, ProducesOneOutcomePerEpoch) {
  auto scenario = test::make_small_scenario(301, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  DriftConfig drift;
  drift.epochs = 3;
  drift.epoch_seconds = 20.0;
  const auto result =
      compare_static_vs_adaptive(scenario.dc, model, {}, drift);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.epochs.size(), 3u);
  for (const auto& epoch : result.epochs) {
    EXPECT_GE(epoch.static_reward_rate, 0.0);
    EXPECT_GE(epoch.adaptive_reward_rate, 0.0);
  }
}

TEST(Adaptive, FirstEpochHasNoDrift) {
  auto scenario = test::make_small_scenario(302, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  DriftConfig drift;
  drift.epochs = 2;
  drift.epoch_seconds = 15.0;
  const auto result =
      compare_static_vs_adaptive(scenario.dc, model, {}, drift);
  ASSERT_TRUE(result.feasible);
  for (double s : result.epochs[0].arrival_scale) EXPECT_DOUBLE_EQ(s, 1.0);
  // With identical rates and the same sample path, both policies coincide in
  // epoch 0 (the adaptive re-run reproduces the deterministic assignment).
  EXPECT_NEAR(result.epochs[0].static_reward_rate,
              result.epochs[0].adaptive_reward_rate, 1e-9);
}

TEST(Adaptive, RestoresOriginalArrivalRates) {
  auto scenario = test::make_small_scenario(303, 8, 2);
  const auto original = scenario.dc.task_types;
  const thermal::HeatFlowModel model(scenario.dc);
  DriftConfig drift;
  drift.epochs = 3;
  drift.epoch_seconds = 10.0;
  compare_static_vs_adaptive(scenario.dc, model, {}, drift);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(scenario.dc.task_types[i].arrival_rate,
                     original[i].arrival_rate);
  }
}

TEST(Adaptive, DriftScalesStayClamped) {
  auto scenario = test::make_small_scenario(304, 8, 2);
  const thermal::HeatFlowModel model(scenario.dc);
  DriftConfig drift;
  drift.epochs = 10;
  drift.epoch_seconds = 5.0;
  drift.drift_magnitude = 0.8;
  const auto result =
      compare_static_vs_adaptive(scenario.dc, model, {}, drift);
  ASSERT_TRUE(result.feasible);
  for (const auto& epoch : result.epochs) {
    for (double s : epoch.arrival_scale) {
      EXPECT_GE(s, 0.2);
      EXPECT_LE(s, 3.0);
    }
  }
}

TEST(Adaptive, AdaptationDoesNotLoseOnAverage) {
  // Re-assigning for the true arrival rates should not hurt; over several
  // seeds the cumulative adaptive reward matches or beats the static one.
  double gain_sum = 0.0;
  int runs = 0;
  for (std::uint64_t seed : {305, 306, 307}) {
    auto scenario = test::make_small_scenario(seed, 8, 2);
    const thermal::HeatFlowModel model(scenario.dc);
    DriftConfig drift;
    drift.epochs = 4;
    drift.epoch_seconds = 30.0;
    drift.seed = seed;
    const auto result =
        compare_static_vs_adaptive(scenario.dc, model, {}, drift);
    if (!result.feasible) continue;
    gain_sum += result.adaptation_gain();
    ++runs;
  }
  ASSERT_GE(runs, 2);
  EXPECT_GT(gain_sum / runs, -0.02);
}

TEST(Adaptive, GainAccessorConsistent) {
  AdaptiveResult r;
  r.static_total_reward = 100.0;
  r.adaptive_total_reward = 110.0;
  EXPECT_NEAR(r.adaptation_gain(), 0.10, 1e-12);
  r.static_total_reward = 0.0;
  EXPECT_DOUBLE_EQ(r.adaptation_gain(), 0.0);
}

}  // namespace
}  // namespace tapo::sim
