#include "sim/arrivals.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tapo::sim {
namespace {

std::vector<dc::TaskType> two_types(double r1, double r2) {
  dc::TaskType a, b;
  a.arrival_rate = r1;
  b.arrival_rate = r2;
  return {a, b};
}

TEST(Arrivals, MeanInterarrivalMatchesRate) {
  ArrivalProcess arrivals(two_types(5.0, 0.5), util::Rng(3));
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += arrivals.next_interarrival(0);
  EXPECT_NEAR(sum / n, 0.2, 0.005);
}

TEST(Arrivals, ZeroRateNeverArrives) {
  ArrivalProcess arrivals(two_types(0.0, 1.0), util::Rng(3));
  EXPECT_TRUE(std::isinf(arrivals.next_interarrival(0)));
  EXPECT_TRUE(std::isfinite(arrivals.next_interarrival(1)));
  // Absolute-time form of the same contract: no arrival ever, at any clock.
  EXPECT_TRUE(std::isinf(arrivals.next_arrival_after(0, 0.0)));
  EXPECT_TRUE(std::isinf(arrivals.next_arrival_after(0, 1e9)));
}

TEST(Arrivals, ZeroRateDrawsConsumeNoRandomness) {
  // The documented contract (arrivals.h): a rate <= 0 type returns
  // +infinity WITHOUT touching its RNG substream. Observable with a trace
  // that later raises the rate — the post-silence draws must bit-match a
  // process that never made the silent calls at all.
  RateTrace trace;
  trace.per_type = {{{0.0, 0.0}, {50.0, 2.0}}, {{0.0, 1.0}}};
  ASSERT_TRUE(trace.validate().ok());
  ArrivalProcess probed(two_types(0.0, 1.0), util::Rng(3), &trace);
  ArrivalProcess fresh(two_types(0.0, 1.0), util::Rng(3), &trace);
  // Hammer the silent type before its rate rises...
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(std::isinf(probed.next_interarrival(0)));
  }
  // ...and the first real arrival matches the untouched process exactly.
  EXPECT_DOUBLE_EQ(probed.next_arrival_after(0, 0.0),
                   fresh.next_arrival_after(0, 0.0));
}

TEST(Arrivals, StreamsAreIndependentOfDrawOrder) {
  // Drawing from type 0 must not perturb type 1's stream.
  ArrivalProcess a(two_types(2.0, 3.0), util::Rng(9));
  ArrivalProcess b(two_types(2.0, 3.0), util::Rng(9));
  for (int i = 0; i < 5; ++i) a.next_interarrival(0);
  EXPECT_DOUBLE_EQ(a.next_interarrival(1), b.next_interarrival(1));
}

TEST(Arrivals, Reproducible) {
  ArrivalProcess a(two_types(2.0, 3.0), util::Rng(10));
  ArrivalProcess b(two_types(2.0, 3.0), util::Rng(10));
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.next_interarrival(0), b.next_interarrival(0));
    EXPECT_DOUBLE_EQ(a.next_interarrival(1), b.next_interarrival(1));
  }
}

TEST(Arrivals, RateAccessors) {
  ArrivalProcess arrivals(two_types(2.0, 3.0), util::Rng(1));
  EXPECT_EQ(arrivals.num_task_types(), 2u);
  EXPECT_DOUBLE_EQ(arrivals.rate(0), 2.0);
  EXPECT_DOUBLE_EQ(arrivals.rate(1), 3.0);
}

TEST(Arrivals, PoissonCountVariance) {
  // Count arrivals in 1-second windows: Poisson => variance ~= mean.
  ArrivalProcess arrivals(two_types(10.0, 1.0), util::Rng(17));
  const int windows = 5000;
  double sum = 0.0, sq = 0.0;
  for (int w = 0; w < windows; ++w) {
    double t = 0.0;
    int count = -1;
    while (t < 1.0) {
      t += arrivals.next_interarrival(0);
      ++count;
    }
    sum += count;
    sq += static_cast<double>(count) * count;
  }
  const double mean = sum / windows;
  const double var = sq / windows - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.3);
  EXPECT_NEAR(var / mean, 1.0, 0.1);
}

}  // namespace
}  // namespace tapo::sim
