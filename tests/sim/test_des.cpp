#include "sim/des.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/assigner.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/telemetry.h"

namespace tapo::sim {
namespace {

struct DesFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(131, 8, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible);
  }
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

TEST_F(DesFixture, AchievedRewardTracksPrediction) {
  // The window must dwarf the longest service times (minutes for the slow
  // task types) or completion-side accounting truncates the tail.
  SimOptions options;
  options.duration_seconds = 500.0;
  options.warmup_seconds = 100.0;
  const SimResult result = simulate(scenario->dc, assignment, options);
  // The online scheduler should realize most of the steady-state prediction;
  // it can exceed it slightly (it may admit work the LP reserved headroom for).
  EXPECT_GT(result.reward_rate, 0.7 * assignment.reward_rate);
  EXPECT_LT(result.reward_rate, 1.3 * assignment.reward_rate);
}

TEST_F(DesFixture, AdmittedTasksMeetDeadlines) {
  // The scheduler's admission test is exact for FIFO cores, so no admitted
  // task may finish late; completions cannot exceed admissions (some
  // admitted work may still be queued at the horizon).
  SimOptions options;
  options.duration_seconds = 30.0;
  const SimResult result = simulate(scenario->dc, assignment, options);
  for (const auto& m : result.per_type) {
    EXPECT_EQ(m.completed_late, 0u);
    EXPECT_LE(m.completed_in_time, m.assigned);
  }
}

TEST_F(DesFixture, OversubscriptionCausesDrops) {
  // Arrival rates were sized for all-P0 capacity; the power budget admits
  // only part of it, so a healthy share of tasks must be dropped.
  SimOptions options;
  options.duration_seconds = 30.0;
  const SimResult result = simulate(scenario->dc, assignment, options);
  EXPECT_GT(result.drop_fraction(), 0.05);
  EXPECT_LT(result.drop_fraction(), 0.95);
}

TEST_F(DesFixture, ArrivalCountsMatchRates) {
  SimOptions options;
  options.duration_seconds = 100.0;
  const SimResult result = simulate(scenario->dc, assignment, options);
  for (std::size_t i = 0; i < result.per_type.size(); ++i) {
    const double expected =
        scenario->dc.task_types[i].arrival_rate * options.duration_seconds;
    EXPECT_NEAR(result.per_type[i].arrived, expected, 5 * std::sqrt(expected) + 1)
        << "type " << i;
  }
}

TEST_F(DesFixture, ReproducibleForSameSeed) {
  SimOptions options;
  options.duration_seconds = 20.0;
  options.seed = 77;
  const SimResult a = simulate(scenario->dc, assignment, options);
  const SimResult b = simulate(scenario->dc, assignment, options);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  EXPECT_EQ(a.per_type[0].arrived, b.per_type[0].arrived);
}

TEST_F(DesFixture, DifferentSeedsDiffer) {
  SimOptions a_opts, b_opts;
  a_opts.duration_seconds = b_opts.duration_seconds = 20.0;
  a_opts.seed = 1;
  b_opts.seed = 2;
  const SimResult a = simulate(scenario->dc, assignment, a_opts);
  const SimResult b = simulate(scenario->dc, assignment, b_opts);
  EXPECT_NE(a.total_reward, b.total_reward);
}

TEST_F(DesFixture, WarmupExcludedFromMetrics) {
  SimOptions with_warmup;
  with_warmup.duration_seconds = 30.0;
  with_warmup.warmup_seconds = 10.0;
  const SimResult result = simulate(scenario->dc, assignment, with_warmup);
  EXPECT_DOUBLE_EQ(result.measured_seconds, 20.0);
  // Rates must still be sane with the shortened window.
  EXPECT_GT(result.reward_rate, 0.0);
}

TEST_F(DesFixture, AccountingIsConsistent) {
  SimOptions options;
  options.duration_seconds = 25.0;
  const SimResult result = simulate(scenario->dc, assignment, options);
  double reward = 0.0;
  for (const auto& m : result.per_type) {
    EXPECT_EQ(m.arrived, m.assigned + m.dropped);
    reward += m.reward;
  }
  EXPECT_NEAR(reward, result.total_reward, 1e-9);
}

TEST_F(DesFixture, LongerRunsTightenTracking) {
  SimOptions short_run, long_run;
  short_run.duration_seconds = 10.0;
  long_run.duration_seconds = 120.0;
  const SimResult a = simulate(scenario->dc, assignment, short_run);
  const SimResult b = simulate(scenario->dc, assignment, long_run);
  // The TC-weighted deviation is noisy but must not grow with duration, and
  // the long-run aggregate deviation stays below 100% of the desired rates.
  EXPECT_LT(b.mean_tracking_error, a.mean_tracking_error + 0.15);
  EXPECT_LT(b.mean_tracking_error, 1.0);
}

TEST_F(DesFixture, EnergyAccountingMatchesPowerTimesTime) {
  SimOptions options;
  options.duration_seconds = 36.0;  // 0.01 h
  const SimResult result = simulate(scenario->dc, assignment, options);
  EXPECT_NEAR(result.energy_kwh, assignment.total_power_kw() * 0.01, 1e-9);
  EXPECT_NEAR(result.reward_per_kwh, result.total_reward / result.energy_kwh,
              1e-9);
  EXPECT_GT(result.reward_per_kwh, 0.0);
}

TEST(Des, ZeroRatesProduceNoWork) {
  const auto scenario = test::make_small_scenario(132, 4, 1);
  const thermal::HeatFlowModel model(scenario.dc);
  core::Assignment idle;
  idle.feasible = true;
  idle.technique = "idle";
  idle.crac_out_c.assign(scenario.dc.num_cracs(), 18.0);
  idle.core_pstate.assign(scenario.dc.total_cores(),
                          scenario.dc.node_types[0].off_state());
  idle.tc = solver::Matrix(scenario.dc.num_task_types(), scenario.dc.total_cores());
  SimOptions options;
  options.duration_seconds = 10.0;
  const SimResult result = simulate(scenario.dc, idle, options);
  EXPECT_DOUBLE_EQ(result.total_reward, 0.0);
  EXPECT_DOUBLE_EQ(result.drop_fraction(), 1.0);
}

TEST_F(DesFixture, TelemetryDoesNotChangeTheSimulation) {
  // The sampler events are pure observers: a run with a registry attached
  // must produce a bit-identical SimResult, and the registry's aggregates
  // must agree with that result.
  SimOptions plain;
  plain.duration_seconds = 60.0;
  plain.warmup_seconds = 10.0;
  const SimResult without = simulate(scenario->dc, assignment, plain);

  util::telemetry::Registry registry;
  SimOptions observed = plain;
  observed.telemetry = &registry;
  const SimResult with = simulate(scenario->dc, assignment, observed);

  EXPECT_EQ(with.total_reward, without.total_reward);
  EXPECT_EQ(with.reward_rate, without.reward_rate);
  EXPECT_EQ(with.mean_tracking_error, without.mean_tracking_error);
  EXPECT_EQ(with.energy_kwh, without.energy_kwh);
  ASSERT_EQ(with.per_type.size(), without.per_type.size());
  for (std::size_t i = 0; i < with.per_type.size(); ++i) {
    EXPECT_EQ(with.per_type[i].arrived, without.per_type[i].arrived);
    EXPECT_EQ(with.per_type[i].assigned, without.per_type[i].assigned);
    EXPECT_EQ(with.per_type[i].dropped, without.per_type[i].dropped);
    EXPECT_EQ(with.per_type[i].completed_in_time,
              without.per_type[i].completed_in_time);
  }

  EXPECT_EQ(registry.counter_value("sim.runs"), 1u);
  EXPECT_GT(registry.counter_value("sim.events_processed"), 0u);
  EXPECT_EQ(registry.gauge_value("scheduler.final_tracking_error"),
            with.mean_tracking_error);
  EXPECT_EQ(registry.gauge_value("sim.reward_rate"), with.reward_rate);
  EXPECT_EQ(registry.series_values("scheduler.tracking_error").size(),
            observed.telemetry_samples);
  EXPECT_EQ(registry.series_values("sim.queue_depth").size(),
            observed.telemetry_samples);
  EXPECT_EQ(registry.timer_stats("sim.run").count, 1u);
}

}  // namespace
}  // namespace tapo::sim
