#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace tapo::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run_until(10.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TieBreaksByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(0); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Regression: the scheduler's determinism contract. Many events across two
// tied timestamps — the later one exactly at the horizon — must run in
// insertion order within each timestamp, even when interleaved at schedule
// time and when the heap grows large enough to reorder internally.
TEST(Engine, InterleavedTiesIncludingAtHorizonRunInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(100 + i); });
    engine.schedule_at(2.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(engine.run_until(5.0), 16u);
  std::vector<int> expected;
  for (int i = 0; i < 8; ++i) expected.push_back(i);
  for (int i = 0; i < 8; ++i) expected.push_back(100 + i);
  EXPECT_EQ(order, expected);
}

// Regression: an event that schedules another event at its *own* timestamp
// gets a later sequence number, so the newcomer runs after every already
// queued event at that time — insertion order, not recursion order.
TEST(Engine, EventSchedulingAtOwnTimeRunsAfterQueuedTies) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] {
    order.push_back(0);
    engine.schedule_at(1.0, [&] { order.push_back(2); });
  });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  EXPECT_EQ(engine.run_until(1.0), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, HorizonStopsExecution) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(5.0, [&] { ++count; });
  EXPECT_EQ(engine.run_until(2.0), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.pending(), 1u);
  // Resuming executes the remainder.
  EXPECT_EQ(engine.run_until(10.0), 1u);
  EXPECT_EQ(count, 2);
}

TEST(Engine, EventExactlyAtHorizonRuns) {
  Engine engine;
  bool ran = false;
  engine.schedule_at(2.0, [&] { ran = true; });
  engine.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine engine;
  double seen = -1.0;
  engine.schedule_at(4.5, [&] { seen = engine.now(); });
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);  // clamped to horizon afterwards
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int chain = 0;
  std::function<void()> step = [&] {
    ++chain;
    if (chain < 5) engine.schedule_in(1.0, step);
  };
  engine.schedule_at(0.0, step);
  engine.run_until(100.0);
  EXPECT_EQ(chain, 5);
}

TEST(Engine, ScheduleInUsesCurrentTime) {
  Engine engine;
  double when = -1.0;
  engine.schedule_at(3.0, [&] {
    engine.schedule_in(2.0, [&] { when = engine.now(); });
  });
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run_until(6.0);
  EXPECT_DEATH(engine.schedule_at(1.0, [] {}), "past");
}

TEST(Engine, ChainBeyondHorizonIsCut) {
  Engine engine;
  int count = 0;
  std::function<void()> step = [&] {
    ++count;
    engine.schedule_in(1.0, step);
  };
  engine.schedule_at(0.0, step);
  engine.run_until(3.5);
  EXPECT_EQ(count, 4);  // t = 0, 1, 2, 3
}

}  // namespace
}  // namespace tapo::sim
