#include "sim/faults.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/assigner.h"
#include "sim/des.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/telemetry.h"

namespace tapo::sim {
namespace {

FaultSchedule make_mixed_schedule() {
  FaultSchedule s;
  s.events.push_back({12.5, FaultKind::kNodeFail, 3, 0.0});
  s.events.push_back({30.0, FaultKind::kNodeRepair, 3, 0.0});
  s.events.push_back({7.25, FaultKind::kCracDerate, 1, 0.4});
  s.events.push_back({40.0, FaultKind::kCracRepair, 1, 0.0});
  s.events.push_back({20.0, FaultKind::kPowerCap, 0, 55.5});
  return s;
}

TEST(FaultSchedule, SaveLoadRoundTrip) {
  FaultSchedule original = make_mixed_schedule();
  std::ostringstream os;
  save_fault_schedule(original, os);

  std::istringstream is(os.str());
  const auto loaded = load_fault_schedule(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();

  original.sort_by_time();  // the loader returns time-sorted events
  ASSERT_EQ(loaded->events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded->events[i].time_s, original.events[i].time_s);
    EXPECT_EQ(loaded->events[i].kind, original.events[i].kind);
    EXPECT_EQ(loaded->events[i].target, original.events[i].target);
    EXPECT_DOUBLE_EQ(loaded->events[i].value, original.events[i].value);
  }
}

TEST(FaultSchedule, CommentsAndBlankLinesAreIgnored) {
  std::istringstream is(
      "tapo-faults v1\n"
      "\n"
      "# a comment\n"
      "5 node_fail 0\n"
      "   \n"
      "# another\n");
  const auto loaded = load_fault_schedule(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->events.size(), 1u);
  EXPECT_EQ(loaded->events[0].kind, FaultKind::kNodeFail);
}

TEST(FaultSchedule, RejectsBadHeader) {
  std::istringstream is("tapo-faults v9\n5 node_fail 0\n");
  const auto loaded = load_fault_schedule(is);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST(FaultSchedule, RejectsUnknownKindWithLineNumber) {
  std::istringstream is(
      "tapo-faults v1\n"
      "5 node_fail 0\n"
      "9 node_melt 1\n");
  const auto loaded = load_fault_schedule(is);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("node_melt"), std::string::npos);
}

TEST(FaultSchedule, RejectsOutOfRangeFraction) {
  std::istringstream is("tapo-faults v1\n5 crac_derate 0 1.5\n");
  const auto loaded = load_fault_schedule(is);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(FaultSchedule, RejectsNegativeTimeAndBadArity) {
  {
    std::istringstream is("tapo-faults v1\n-3 node_fail 0\n");
    EXPECT_FALSE(load_fault_schedule(is).ok());
  }
  {
    std::istringstream is("tapo-faults v1\n3 node_fail\n");
    EXPECT_FALSE(load_fault_schedule(is).ok());
  }
  {
    std::istringstream is("tapo-faults v1\n3 power_cap\n");
    EXPECT_FALSE(load_fault_schedule(is).ok());
  }
}

TEST(FaultSchedule, LoadFileReportsNotFound) {
  const auto loaded = load_fault_schedule_file("/nonexistent/faults.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(FaultSchedule, ValidateRejectsOutOfRangeIndices) {
  const dc::DataCenter dc = test::make_tiny_dc({0, 1}, 2);
  FaultSchedule s;
  s.events.push_back({1.0, FaultKind::kNodeFail, 7, 0.0});
  const util::Status bad_node = s.validate(dc);
  ASSERT_FALSE(bad_node.ok());
  EXPECT_NE(bad_node.message().find("node index 7"), std::string::npos);

  s.events.clear();
  s.events.push_back({1.0, FaultKind::kCracRepair, 5, 0.0});
  EXPECT_FALSE(s.validate(dc).ok());

  s.events.clear();
  s.events.push_back({1.0, FaultKind::kPowerCap, 0, -2.0});
  EXPECT_FALSE(s.validate(dc).ok());

  EXPECT_TRUE(make_mixed_schedule().validate(test::make_tiny_dc({0, 0, 0, 0}, 2))
                  .ok());
}

TEST(FaultSchedule, GeneratorIsDeterministicPerSeed) {
  const dc::DataCenter dc = test::make_tiny_dc({0, 1, 0, 1, 0}, 2);
  FaultInjectionConfig config;
  config.seed = 42;
  config.node_failures = 2;
  config.node_repair_after_s = 15.0;
  config.crac_derates = 1;
  config.power_cap_fraction = 0.8;

  const FaultSchedule a = generate_fault_schedule(dc, config);
  const FaultSchedule b = generate_fault_schedule(dc, config);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.events.size(), 2u + 2u + 1u + 1u);  // fails+repairs+derate+cap
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].time_s, b.events[i].time_s);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].target, b.events[i].target);
  }
  EXPECT_TRUE(a.validate(dc).ok());

  config.seed = 43;
  const FaultSchedule c = generate_fault_schedule(dc, config);
  bool differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (a.events[i].time_s != c.events[i].time_s ||
        a.events[i].target != c.events[i].target) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, ApplyFaultMutatesDegradedState) {
  dc::DataCenter dc = test::make_tiny_dc({0, 1, 0}, 2);
  const double tmin = 15.0, tmax = 32.0;

  apply_fault(dc, {1.0, FaultKind::kNodeFail, 1, 0.0}, tmin, tmax);
  EXPECT_TRUE(dc.node_failed(1));
  EXPECT_DOUBLE_EQ(dc.node_base_power_kw(1), 0.0);

  apply_fault(dc, {2.0, FaultKind::kNodeRepair, 1, 0.0}, tmin, tmax);
  EXPECT_FALSE(dc.node_failed(1));

  apply_fault(dc, {3.0, FaultKind::kCracDerate, 0, 0.25}, tmin, tmax);
  EXPECT_DOUBLE_EQ(dc.crac_min_outlet(0, tmin), tmax - 0.25 * (tmax - tmin));
  EXPECT_DOUBLE_EQ(dc.crac_min_outlet(1, tmin), tmin);  // other unit untouched

  apply_fault(dc, {4.0, FaultKind::kCracRepair, 0, 0.0}, tmin, tmax);
  EXPECT_DOUBLE_EQ(dc.crac_min_outlet(0, tmin), tmin);

  apply_fault(dc, {5.0, FaultKind::kPowerCap, 0, 33.0}, tmin, tmax);
  EXPECT_DOUBLE_EQ(dc.p_const_kw, 33.0);
}

// ---- simulate_with_faults -------------------------------------------------

struct FaultSimFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(131, 8, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible);
  }

  // Node failure + CRAC derate + power-cap drop, all inside the run.
  FaultSchedule mid_run_schedule() const {
    FaultSchedule s;
    s.events.push_back({20.0, FaultKind::kNodeFail, 2, 0.0});
    s.events.push_back({35.0, FaultKind::kCracDerate, 0, 0.6});
    s.events.push_back(
        {50.0, FaultKind::kPowerCap, 0, 0.9 * scenario->dc.p_const_kw});
    return s;
  }

  FaultSimOptions base_options() const {
    FaultSimOptions o;
    o.sim.duration_seconds = 80.0;
    o.sim.warmup_seconds = 5.0;
    o.sim.seed = 9;
    o.recovery.replan_delay_s = 5.0;
    return o;
  }

  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

void expect_identical(const FaultSimResult& a, const FaultSimResult& b) {
  EXPECT_EQ(a.sim.total_reward, b.sim.total_reward);
  EXPECT_EQ(a.sim.reward_rate, b.sim.reward_rate);
  EXPECT_EQ(a.sim.energy_kwh, b.sim.energy_kwh);
  EXPECT_EQ(a.sim.mean_tracking_error, b.sim.mean_tracking_error);
  ASSERT_EQ(a.sim.per_type.size(), b.sim.per_type.size());
  for (std::size_t i = 0; i < a.sim.per_type.size(); ++i) {
    EXPECT_EQ(a.sim.per_type[i].arrived, b.sim.per_type[i].arrived);
    EXPECT_EQ(a.sim.per_type[i].assigned, b.sim.per_type[i].assigned);
    EXPECT_EQ(a.sim.per_type[i].dropped, b.sim.per_type[i].dropped);
    EXPECT_EQ(a.sim.per_type[i].completed_in_time,
              b.sim.per_type[i].completed_in_time);
    EXPECT_EQ(a.sim.per_type[i].reward, b.sim.per_type[i].reward);
  }
  ASSERT_EQ(a.faults.size(), b.faults.size());
  EXPECT_EQ(a.replans_adopted, b.replans_adopted);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].safe, b.faults[i].safe);
    EXPECT_EQ(a.faults[i].replan_adopted, b.faults[i].replan_adopted);
    EXPECT_EQ(a.faults[i].throttle_reward_rate, b.faults[i].throttle_reward_rate);
    EXPECT_EQ(a.faults[i].replan_reward_rate, b.faults[i].replan_reward_rate);
    EXPECT_EQ(a.faults[i].tasks_killed, b.faults[i].tasks_killed);
    EXPECT_EQ(a.faults[i].tasks_requeued, b.faults[i].tasks_requeued);
  }
}

TEST_F(FaultSimFixture, BitIdenticalAcrossRecoveryThreadCounts) {
  // The phase-2 re-solve reuses the Stage-1 parallel grid search; its
  // deterministic reduction must make the whole fault run independent of the
  // worker thread count.
  const FaultSchedule schedule = mid_run_schedule();
  FaultSimResult runs[3];
  const std::size_t threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    FaultSimOptions o = base_options();
    o.recovery.assign.stage1.threads = threads[i];
    runs[i] = simulate_with_faults(scenario->dc, *model, assignment, schedule, o);
    ASSERT_TRUE(runs[i].status.ok()) << runs[i].status.to_string();
  }
  expect_identical(runs[0], runs[1]);
  expect_identical(runs[0], runs[2]);
}

TEST_F(FaultSimFixture, TelemetryDoesNotChangeTheFaultRun) {
  const FaultSchedule schedule = mid_run_schedule();
  const FaultSimResult without = simulate_with_faults(
      scenario->dc, *model, assignment, schedule, base_options());
  ASSERT_TRUE(without.status.ok()) << without.status.to_string();

  util::telemetry::Registry registry;
  FaultSimOptions observed = base_options();
  observed.sim.telemetry = &registry;
  observed.recovery.telemetry = &registry;
  const FaultSimResult with = simulate_with_faults(scenario->dc, *model,
                                                   assignment, schedule, observed);
  ASSERT_TRUE(with.status.ok()) << with.status.to_string();

  expect_identical(with, without);
  EXPECT_EQ(registry.counter_value("sim.fault_runs"), 1u);
  EXPECT_EQ(registry.counter_value("fault.events"), schedule.events.size());
  EXPECT_EQ(registry.counter_value("fault.node_failures"), 1u);
  EXPECT_EQ(registry.counter_value("fault.crac_derates"), 1u);
  EXPECT_EQ(registry.counter_value("fault.power_caps"), 1u);
  EXPECT_EQ(registry.counter_value("recovery.invocations"),
            schedule.events.size());
  EXPECT_EQ(registry.timer_stats("sim.fault_run").count, 1u);
}

TEST_F(FaultSimFixture, DataCenterStateIsRestoredAfterRun) {
  const double p_const_before = scenario->dc.p_const_kw;
  const FaultSimResult result = simulate_with_faults(
      scenario->dc, *model, assignment, mid_run_schedule(), base_options());
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_DOUBLE_EQ(scenario->dc.p_const_kw, p_const_before);
  EXPECT_EQ(scenario->dc.num_failed_nodes(), 0u);
  for (std::size_t c = 0; c < scenario->dc.num_cracs(); ++c) {
    EXPECT_DOUBLE_EQ(scenario->dc.crac_min_outlet(c, 15.0), 15.0);
  }
}

TEST_F(FaultSimFixture, EmptyScheduleMatchesPlainSimulate) {
  const FaultSimOptions o = base_options();
  const FaultSimResult with_faults = simulate_with_faults(
      scenario->dc, *model, assignment, FaultSchedule{}, o);
  ASSERT_TRUE(with_faults.status.ok()) << with_faults.status.to_string();
  const SimResult plain = simulate(scenario->dc, assignment, o.sim);

  EXPECT_TRUE(with_faults.faults.empty());
  EXPECT_EQ(with_faults.sim.total_reward, plain.total_reward);
  EXPECT_NEAR(with_faults.sim.energy_kwh, plain.energy_kwh, 1e-9);
  ASSERT_EQ(with_faults.sim.per_type.size(), plain.per_type.size());
  for (std::size_t i = 0; i < plain.per_type.size(); ++i) {
    EXPECT_EQ(with_faults.sim.per_type[i].arrived, plain.per_type[i].arrived);
    EXPECT_EQ(with_faults.sim.per_type[i].dropped, plain.per_type[i].dropped);
  }
}

TEST_F(FaultSimFixture, NodeFailureKillsInFlightWork) {
  FaultSchedule schedule;
  schedule.events.push_back({20.0, FaultKind::kNodeFail, 2, 0.0});

  FaultSimOptions drop = base_options();
  drop.in_flight = InFlightPolicy::kDrop;
  const FaultSimResult dropped = simulate_with_faults(
      scenario->dc, *model, assignment, schedule, drop);
  ASSERT_TRUE(dropped.status.ok()) << dropped.status.to_string();
  ASSERT_EQ(dropped.faults.size(), 1u);
  EXPECT_GT(dropped.faults[0].tasks_killed, 0u);
  EXPECT_EQ(dropped.faults[0].tasks_requeued, 0u);

  FaultSimOptions requeue = base_options();
  requeue.in_flight = InFlightPolicy::kRequeue;
  const FaultSimResult requeued = simulate_with_faults(
      scenario->dc, *model, assignment, schedule, requeue);
  ASSERT_TRUE(requeued.status.ok()) << requeued.status.to_string();
  ASSERT_EQ(requeued.faults.size(), 1u);
  EXPECT_GT(requeued.faults[0].tasks_killed, 0u);
  // Re-routing can fail for individual tasks, but the policy must try.
  EXPECT_LE(requeued.faults[0].tasks_requeued, requeued.faults[0].tasks_killed);

  // Admission accounting stays consistent in both modes.
  for (const auto* r : {&dropped, &requeued}) {
    for (const auto& m : r->sim.per_type) {
      EXPECT_EQ(m.arrived, m.assigned + m.dropped);
    }
  }
}

TEST_F(FaultSimFixture, DegenerateOptionsAndSchedulesAreRejected) {
  FaultSimOptions bad = base_options();
  bad.sim.duration_seconds = -1.0;
  const FaultSimResult r1 = simulate_with_faults(
      scenario->dc, *model, assignment, FaultSchedule{}, bad);
  EXPECT_FALSE(r1.status.ok());
  EXPECT_EQ(r1.status.code(), util::StatusCode::kInvalidArgument);

  FaultSchedule out_of_range;
  out_of_range.events.push_back({1.0, FaultKind::kNodeFail, 999, 0.0});
  const FaultSimResult r2 = simulate_with_faults(
      scenario->dc, *model, assignment, out_of_range, base_options());
  EXPECT_FALSE(r2.status.ok());
  EXPECT_NE(r2.status.message().find("fault schedule"), std::string::npos);
}

TEST(SimOptionsValidate, RejectsDegenerateConfigs) {
  SimOptions o;
  EXPECT_TRUE(o.validate().ok());
  o.duration_seconds = 0.0;
  EXPECT_FALSE(o.validate().ok());
  o.duration_seconds = 10.0;
  o.warmup_seconds = 10.0;  // warm-up must end before the horizon
  EXPECT_FALSE(o.validate().ok());
  o.warmup_seconds = -1.0;
  EXPECT_FALSE(o.validate().ok());
}

}  // namespace
}  // namespace tapo::sim
