// "tapo-traces v1" piecewise-constant rate traces: validation, exact
// serialize/parse round-trips, line-numbered parse errors, seeded shape
// generators, trace-driven arrival sampling (including the mid-trace
// rate->0 regression), and trace-driven simulate() end to end. The mutation
// fuzz runs under the ASan+UBSan CI job via this suite.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/assigner.h"
#include "sim/arrivals.h"
#include "sim/des.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/rng.h"

namespace tapo::sim {
namespace {

std::vector<dc::TaskType> two_types(double r1, double r2) {
  dc::TaskType a, b;
  a.arrival_rate = r1;
  b.arrival_rate = r2;
  return {a, b};
}

RateTrace two_type_trace() {
  RateTrace trace;
  trace.per_type = {
      {{0.0, 2.0}, {10.0, 6.0}, {30.0, 2.0}},
      {{0.0, 1.0}, {20.0, 0.0}},
  };
  return trace;
}

TEST(RateTrace, ValidateAcceptsAndRejects) {
  EXPECT_TRUE(two_type_trace().validate().ok());

  RateTrace empty;
  EXPECT_FALSE(empty.validate().ok());

  RateTrace no_segments;
  no_segments.per_type = {{}};
  EXPECT_FALSE(no_segments.validate().ok());

  RateTrace late_start = two_type_trace();
  late_start.per_type[0][0].start_s = 1.0;
  EXPECT_FALSE(late_start.validate().ok());

  RateTrace unordered = two_type_trace();
  unordered.per_type[0][2].start_s = 10.0;  // equals the previous start
  EXPECT_FALSE(unordered.validate().ok());

  RateTrace negative = two_type_trace();
  negative.per_type[1][1].rate = -0.5;
  EXPECT_FALSE(negative.validate().ok());

  RateTrace inf_rate = two_type_trace();
  inf_rate.per_type[0][1].rate = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(inf_rate.validate().ok());
}

TEST(RateTrace, RateAtFollowsSegments) {
  const RateTrace trace = two_type_trace();
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 9.999), 2.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 10.0), 6.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 29.0), 6.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 1e9), 2.0);  // last segment extends
  EXPECT_DOUBLE_EQ(trace.rate_at(1, 19.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(1, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(0), 6.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(1), 1.0);
}

TEST(RateTrace, SerializeParseRoundTripIsExact) {
  RateTrace trace = two_type_trace();
  trace.per_type[0][1].rate = 0.1 + 0.2;  // 0.30000000000000004
  trace.per_type[1][0].rate = 1.0 / 3.0;
  const std::string text = serialize_rate_trace(trace);
  util::StatusOr<RateTrace> parsed = parse_rate_trace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(*parsed, trace);
  EXPECT_EQ(serialize_rate_trace(*parsed), text);
}

TEST(RateTrace, ParserErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* line;
  };
  const Case cases[] = {
      {"tapo-traces v2\ntypes 1\nseg 0 0 1\nend\n", "line 1"},
      {"tapo-traces v1\nseg 0 0 1\nend\n", "line 2"},  // seg before types
      {"tapo-traces v1\ntypes 1\nseg 0 0 banana\nend\n", "line 3"},
      {"tapo-traces v1\ntypes 1\nseg 1 0 1\nend\n", "line 3"},  // bad index
      {"tapo-traces v1\ntypes 2\nseg 1 0 1\nseg 0 0 1\nend\n",
       "line 4"},  // types out of order
      {"tapo-traces v1\ntypes 1\nseg 0 0 1\nwat\nend\n", "line 4"},
      {"tapo-traces v1\ntypes 1\nseg 0 0 1\nend\nseg 0 1 1\n", "line 5"},
  };
  for (const Case& c : cases) {
    util::StatusOr<RateTrace> parsed = parse_rate_trace(c.text);
    ASSERT_FALSE(parsed.ok()) << c.text;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.line), std::string::npos)
        << "wanted '" << c.line << "' in: " << parsed.status().to_string();
  }
  // Structural failures caught by the post-parse validation pass (no line
  // number, but still a clean InvalidArgument).
  const char* const invalid_docs[] = {
      "tapo-traces v1\ntypes 1\nseg 0 0 1\nseg 0 0 2\nend\n",  // equal starts
      "tapo-traces v1\ntypes 1\nseg 0 5 1\nend\n",             // start != 0
      "tapo-traces v1\ntypes 1\nseg 0 0 1\n",                  // missing end
      "tapo-traces v1\ntypes 2\nseg 0 0 1\nend\n",             // type 1 empty
  };
  for (const char* doc : invalid_docs) {
    util::StatusOr<RateTrace> parsed = parse_rate_trace(doc);
    ASSERT_FALSE(parsed.ok()) << doc;
    EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(RateTrace, CommentsAndBlankLinesAreSkipped) {
  const std::string text =
      "# leading comment\n"
      "\n"
      "tapo-traces v1\n"
      "types 1\n"
      "# interior\n"
      "seg 0 0 2.5\n"
      "\n"
      "end\n";
  util::StatusOr<RateTrace> parsed = parse_rate_trace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_DOUBLE_EQ(parsed->rate_at(0, 1.0), 2.5);
}

// Seed-driven mutation fuzz mirroring the scenario-profile suite: every
// mutation must produce a line-numbered InvalidArgument or a trace that
// revalidates — never a crash or a silently-accepted corrupt document.
TEST(RateTrace, MutationFuzzNeverCrashesOrSilentlyAccepts) {
  const std::string base = serialize_rate_trace(two_type_trace());
  util::Rng rng(20260808);
  const auto pick = [&rng](std::size_t n) -> std::size_t {
    if (n == 0) return 0;
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  };
  std::size_t rejected = 0, accepted = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text = base;
    switch (pick(5)) {
      case 0:
        text.resize(pick(text.size() + 1));
        break;
      case 1: {  // delete one line
        std::vector<std::string> lines;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= text.size(); ++i) {
          if (i == text.size() || text[i] == '\n') {
            lines.push_back(text.substr(start, i - start));
            start = i + 1;
          }
        }
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(pick(lines.size())));
        text.clear();
        for (const std::string& l : lines) text += l + "\n";
        break;
      }
      case 2: {  // garble one byte
        if (!text.empty()) {
          text[pick(text.size())] = static_cast<char>('!' + pick(94));
        }
        break;
      }
      case 3: {  // splice a hostile line after the header
        const char* const splices[] = {"seg 9 0 1\n",   "seg 0 -1 1\n",
                                       "seg 0 0 -2\n",  "seg 0 nan 1\n",
                                       "types 0\n",     "seg 0 inf 1\n"};
        text.insert(text.find('\n') + 1, splices[pick(6)]);
        break;
      }
      default:  // move the header somewhere else
        text = text.substr(14) + text.substr(0, 14);
        break;
    }
    util::StatusOr<RateTrace> parsed = parse_rate_trace(text);
    if (parsed.ok()) {
      ++accepted;
      EXPECT_TRUE(parsed->validate().ok()) << text;
    } else {
      ++rejected;
      EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument)
          << parsed.status().to_string();
    }
  }
  EXPECT_GT(rejected, 1500u);
  EXPECT_GT(accepted, 0u);
}

TEST(RateTrace, GeneratorsAreDeterministicAndValid) {
  const std::vector<dc::TaskType> types = two_types(4.0, 1.5);
  for (const auto kind :
       {RateTraceGenConfig::Kind::kDiurnal, RateTraceGenConfig::Kind::kFlashCrowd,
        RateTraceGenConfig::Kind::kDecayingBurst}) {
    RateTraceGenConfig config;
    config.kind = kind;
    config.seed = 42;
    const RateTrace a = generate_rate_trace(types, config);
    const RateTrace b = generate_rate_trace(types, config);
    EXPECT_TRUE(a.validate().ok());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.num_task_types(), types.size());
    config.seed = 43;
    const RateTrace c = generate_rate_trace(types, config);
    EXPECT_TRUE(c.validate().ok());
  }
}

TEST(RateTrace, FlashCrowdPeaksAtMagnitude) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kFlashCrowd;
  config.start_s = 30.0;
  config.magnitude = 4.0;
  config.duration_s = 15.0;
  const RateTrace trace = generate_rate_trace(two_types(2.0, 1.0), config);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 35.0), 8.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(1), 4.0);
}

TEST(RateTrace, DecayingBurstDecaysTowardBase) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kDecayingBurst;
  config.start_s = 20.0;
  config.magnitude = 5.0;
  config.duration_s = 10.0;  // half-life
  const RateTrace trace = generate_rate_trace(two_types(2.0, 1.0), config);
  const double at_onset = trace.rate_at(0, 20.0 + 1e-9);
  const double later = trace.rate_at(0, 45.0);
  const double base = trace.rate_at(0, 5.0);
  EXPECT_DOUBLE_EQ(base, 2.0);
  EXPECT_GT(at_onset, later);
  EXPECT_GT(later, base - 1e-12);
  // The post-onset rates never increase.
  double prev = at_onset;
  for (double t = 21.0; t < 90.0; t += 1.0) {
    const double r = trace.rate_at(0, t);
    EXPECT_LE(r, prev + 1e-12) << "t=" << t;
    prev = r;
  }
}

TEST(RateTrace, DiurnalSwingsAroundBase) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kDiurnal;
  config.amplitude = 0.5;
  config.segments = 32;
  const RateTrace trace = generate_rate_trace(two_types(4.0, 1.0), config);
  double lo = 1e300, hi = 0.0;
  for (double t = 0.0; t < 100.0; t += 1.0) {
    const double r = trace.rate_at(0, t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 4.0);
  EXPECT_GT(hi, 4.0);
  EXPECT_GE(lo, 4.0 * 0.5 - 1e-9);
  EXPECT_LE(hi, 4.0 * 1.5 + 1e-9);
}

// --- Trace-driven arrival sampling ----------------------------------------

TEST(TraceArrivals, WithoutTraceMatchesInterarrivalPath) {
  // next_arrival_after with no trace must reproduce now + next_interarrival
  // bit-identically (the DES relies on this for seed stability).
  ArrivalProcess a(two_types(2.0, 3.0), util::Rng(5));
  ArrivalProcess b(two_types(2.0, 3.0), util::Rng(5));
  double now_a = 0.0, now_b = 0.0;
  for (int i = 0; i < 50; ++i) {
    now_a = a.next_arrival_after(0, now_a);
    now_b += b.next_interarrival(0);
    ASSERT_DOUBLE_EQ(now_a, now_b);
  }
}

TEST(TraceArrivals, SegmentRatesAreRealized) {
  // Count arrivals inside each segment of a two-segment trace; the empirical
  // rates must match the segment rates.
  RateTrace trace;
  trace.per_type = {{{0.0, 2.0}, {100.0, 8.0}}};
  dc::TaskType t;
  t.arrival_rate = 2.0;
  std::vector<dc::TaskType> types = {t};
  std::size_t in_first = 0, in_second = 0;
  for (int rep = 0; rep < 200; ++rep) {
    ArrivalProcess arrivals(types, util::Rng(1000 + rep), &trace);
    double now = 0.0;
    while (true) {
      now = arrivals.next_arrival_after(0, now);
      if (now >= 200.0) break;
      ++(now < 100.0 ? in_first : in_second);
    }
  }
  const double first_rate = static_cast<double>(in_first) / (200.0 * 100.0);
  const double second_rate = static_cast<double>(in_second) / (200.0 * 100.0);
  EXPECT_NEAR(first_rate, 2.0, 0.05);
  EXPECT_NEAR(second_rate, 8.0, 0.1);
}

TEST(TraceArrivals, MidTraceRateDropToZeroSilencesTheType) {
  // Regression for the stale-pre-drawn-arrival bug class: a rate that drops
  // to 0 at t=10 must produce no arrivals at or after 10, even though draws
  // made before the boundary could have landed past it.
  RateTrace trace;
  trace.per_type = {{{0.0, 5.0}, {10.0, 0.0}}};
  dc::TaskType t;
  t.arrival_rate = 5.0;
  for (int rep = 0; rep < 100; ++rep) {
    ArrivalProcess arrivals(std::vector<dc::TaskType>{t},
                            util::Rng(7000 + rep), &trace);
    double now = 0.0;
    while (true) {
      now = arrivals.next_arrival_after(0, now);
      if (std::isinf(now)) break;
      EXPECT_LT(now, 10.0);
    }
    EXPECT_TRUE(std::isinf(now));
  }
}

TEST(TraceArrivals, ZeroRateGapIsSkippedWithoutConsumingRandomness) {
  // rate 0 on [0, 50), then 3.0: the first arrival lands after 50, and the
  // stream state at the gap's end is as if the process started there.
  RateTrace gap;
  gap.per_type = {{{0.0, 0.0}, {50.0, 3.0}}};
  RateTrace immediate;
  immediate.per_type = {{{0.0, 3.0}}};
  dc::TaskType t;
  t.arrival_rate = 3.0;
  ArrivalProcess a(std::vector<dc::TaskType>{t}, util::Rng(11), &gap);
  ArrivalProcess b(std::vector<dc::TaskType>{t}, util::Rng(11), &immediate);
  const double first_a = a.next_arrival_after(0, 0.0);
  const double first_b = b.next_arrival_after(0, 0.0);
  EXPECT_DOUBLE_EQ(first_a, 50.0 + first_b);
}

// --- Trace-driven simulate() ----------------------------------------------

struct RateTraceSimFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(131, 8, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible);
  }
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

TEST_F(RateTraceSimFixture, SimulateUnderTraceKeepsAccountingConsistent) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kFlashCrowd;
  config.start_s = 10.0;
  config.magnitude = 3.0;
  config.duration_s = 10.0;
  config.horizon_s = 40.0;
  const RateTrace trace =
      generate_rate_trace(scenario->dc.task_types, config);
  SimOptions options;
  options.duration_seconds = 40.0;
  options.rate_trace = &trace;
  const SimResult result = simulate(scenario->dc, assignment, options);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  std::size_t arrived = 0;
  for (const auto& m : result.per_type) {
    EXPECT_EQ(m.arrived, m.assigned + m.dropped);
    arrived += m.arrived;
  }
  EXPECT_GT(arrived, 0u);
}

TEST_F(RateTraceSimFixture, FlashCrowdRaisesArrivalsAboveStationary) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kFlashCrowd;
  config.start_s = 5.0;
  config.magnitude = 4.0;
  config.duration_s = 30.0;
  config.horizon_s = 40.0;
  const RateTrace trace =
      generate_rate_trace(scenario->dc.task_types, config);
  SimOptions options;
  options.duration_seconds = 40.0;
  const SimResult stationary = simulate(scenario->dc, assignment, options);
  options.rate_trace = &trace;
  const SimResult surged = simulate(scenario->dc, assignment, options);
  std::size_t base = 0, flash = 0;
  for (const auto& m : stationary.per_type) base += m.arrived;
  for (const auto& m : surged.per_type) flash += m.arrived;
  EXPECT_GT(flash, base + base / 2);
}

TEST_F(RateTraceSimFixture, ShardedSimulationIsBitIdenticalUnderTrace) {
  RateTraceGenConfig config;
  config.kind = RateTraceGenConfig::Kind::kDiurnal;
  config.amplitude = 0.6;
  config.horizon_s = 30.0;
  const RateTrace trace =
      generate_rate_trace(scenario->dc.task_types, config);
  SimOptions serial;
  serial.duration_seconds = 30.0;
  serial.rate_trace = &trace;
  SimOptions sharded = serial;
  sharded.threads = 4;
  const SimResult a = simulate(scenario->dc, assignment, serial);
  const SimResult b = simulate(scenario->dc, assignment, sharded);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  EXPECT_DOUBLE_EQ(a.energy_kwh, b.energy_kwh);
  ASSERT_EQ(a.per_type.size(), b.per_type.size());
  for (std::size_t i = 0; i < a.per_type.size(); ++i) {
    EXPECT_EQ(a.per_type[i].arrived, b.per_type[i].arrived);
    EXPECT_EQ(a.per_type[i].assigned, b.per_type[i].assigned);
    EXPECT_DOUBLE_EQ(a.per_type[i].reward, b.per_type[i].reward);
  }
}

TEST_F(RateTraceSimFixture, TraceTypeCountMismatchIsRejected) {
  RateTrace trace;
  trace.per_type = {{{0.0, 1.0}}};  // one type; the scenario has more
  SimOptions options;
  options.duration_seconds = 10.0;
  options.rate_trace = &trace;
  const SimResult result = simulate(scenario->dc, assignment, options);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), util::StatusCode::kInvalidArgument);
}

TEST_F(RateTraceSimFixture, InvalidTraceIsRejectedByValidate) {
  RateTrace trace;
  trace.per_type = {{{5.0, 1.0}}};  // first segment must start at 0
  SimOptions options;
  options.rate_trace = &trace;
  EXPECT_FALSE(options.validate().ok());
}

}  // namespace
}  // namespace tapo::sim
