// End-to-end receding-horizon re-planning inside the fault-injecting DES:
// horizon steps patch-and-resume the resident rate LP (lp.session.*
// telemetry proves no rebuild on the hot path), rolling re-plans beat the
// one-shot plan on a drifting trace, degraded steps never abort the run, and
// a fault landing while a horizon adoption is in flight supersedes it
// through the generation guard — exactly one plan is ever adopted per
// window (ISSUE 8 satellite c).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>

#include "core/assigner.h"
#include "core/replanner.h"
#include "sim/arrivals.h"
#include "sim/des.h"
#include "sim/faults.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/telemetry.h"

namespace tapo::sim {
namespace {

struct ReplanSimFixture : ::testing::Test {
  // Arrival-bound park: rates scaled well below capacity so a flash crowd
  // has headroom to capture — the regime where re-planning pays.
  void init(double rate_scale) {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(131, 8, 2));
    for (auto& t : scenario->dc.task_types) t.arrival_rate *= rate_scale;
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible) << assignment.status.to_string();
  }

  dc::DataCenter& dc() { return scenario->dc; }

  static void check_accounting(const SimResult& sim) {
    for (const auto& m : sim.per_type) {
      EXPECT_EQ(m.arrived, m.assigned + m.dropped);
    }
  }

  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

TEST_F(ReplanSimFixture, HorizonStepsPatchAndResumeTheResidentSession) {
  init(0.6);
  RateTraceGenConfig trace_config;
  trace_config.kind = RateTraceGenConfig::Kind::kDiurnal;
  trace_config.seed = 7;
  trace_config.horizon_s = 120.0;
  trace_config.amplitude = 0.6;
  const RateTrace trace = generate_rate_trace(dc().task_types, trace_config);
  ASSERT_TRUE(trace.validate().ok());

  util::telemetry::Registry registry;
  FaultSimOptions options;
  options.sim.duration_seconds = 120.0;
  options.sim.seed = 17;
  options.sim.rate_trace = &trace;
  options.sim.telemetry = &registry;
  core::ReplannerOptions replan;
  replan.cadence_s = 15.0;
  replan.tracking_error_threshold = 0.5;
  options.replan = replan;

  const FaultSimResult out =
      simulate_with_faults(dc(), *model, assignment, FaultSchedule{}, options);
  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  check_accounting(out.sim);

  // 120 s at a 15 s cadence: the drift is tracked by repeated steps...
  EXPECT_GE(out.horizon_steps, 5u);
  EXPECT_GE(out.horizon_adoptions, 5u);
  EXPECT_EQ(registry.counter_value("replan.steps"), out.horizon_steps);
  EXPECT_EQ(registry.counter_value("replan.adoptions"), out.horizon_adoptions);
  // ...and every step after the first resumes the resident LP basis: the
  // whole run performs exactly zero hot-path rebuilds (no faults fired).
  EXPECT_GE(registry.counter_value("lp.session.resident_resumes"),
            out.horizon_steps - 1);
  EXPECT_GT(registry.counter_value("lp.session.patches"), 0u);
  EXPECT_EQ(registry.counter_value("replan.session_rebuilds"), 0u);
}

TEST_F(ReplanSimFixture, RollingBeatsOneShotOnAFlashCrowd) {
  init(0.35);
  RateTraceGenConfig trace_config;
  trace_config.kind = RateTraceGenConfig::Kind::kFlashCrowd;
  trace_config.seed = 5;
  trace_config.horizon_s = 90.0;
  trace_config.magnitude = 3.0;
  trace_config.start_s = 15.0;
  trace_config.duration_s = 50.0;
  const RateTrace trace = generate_rate_trace(dc().task_types, trace_config);
  ASSERT_TRUE(trace.validate().ok());

  FaultSimOptions options;
  options.sim.duration_seconds = 90.0;
  options.sim.seed = 23;
  options.sim.rate_trace = &trace;

  // One-shot: the stationary plan rides out the surge unchanged.
  const FaultSimResult oneshot =
      simulate_with_faults(dc(), *model, assignment, FaultSchedule{}, options);
  ASSERT_TRUE(oneshot.status.ok()) << oneshot.status.to_string();
  EXPECT_EQ(oneshot.horizon_steps, 0u);

  // Rolling: a 10 s cadence re-plan chases the trace.
  core::ReplannerOptions replan;
  replan.cadence_s = 10.0;
  replan.tracking_error_threshold = 0.5;
  replan.sensor_period_s = 5.0;
  options.replan = replan;
  const FaultSimResult rolling =
      simulate_with_faults(dc(), *model, assignment, FaultSchedule{}, options);
  ASSERT_TRUE(rolling.status.ok()) << rolling.status.to_string();
  check_accounting(rolling.sim);
  EXPECT_GT(rolling.horizon_adoptions, 0u);

  // The surge triples demand on a park planned at 35% load: the one-shot
  // plan's arrival rows cap admission at the stationary rates, so rolling
  // collects decisively more reward (EXPERIMENTS.md quantifies this).
  EXPECT_GT(rolling.sim.total_reward, 1.05 * oneshot.sim.total_reward);
}

TEST_F(ReplanSimFixture, PlantedSolveDeadlineDegradesWithoutAborting) {
  init(0.6);
  util::telemetry::Registry registry;
  FaultSimOptions options;
  options.sim.duration_seconds = 60.0;
  options.sim.seed = 29;
  options.sim.telemetry = &registry;
  core::ReplannerOptions replan;
  replan.cadence_s = 10.0;
  replan.tracking_error_threshold = 0.0;  // cadence-only: deterministic count
  replan.lp.max_iterations = 1;           // every step hits the solve deadline
  replan.min_gap_s = 5.0;
  options.replan = replan;

  const FaultSimResult out =
      simulate_with_faults(dc(), *model, assignment, FaultSchedule{}, options);
  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  check_accounting(out.sim);
  EXPECT_GT(out.horizon_steps, 0u);
  EXPECT_EQ(out.horizon_adoptions, 0u);
  EXPECT_EQ(out.horizon_degraded, out.horizon_steps);
  // The healthy park keeps verifying the held plan — no throttle rung —
  // and the run books the whole tail as degraded time.
  EXPECT_EQ(out.horizon_throttles, 0u);
  EXPECT_GT(out.horizon_degraded_time_s, 0.0);
  EXPECT_EQ(registry.counter_value("replan.adoptions_activated"), 0u);
  // Bounded backoff: with min_gap 5 doubling per failure, the 60 s horizon
  // admits only a handful of attempts — no re-plan storm.
  EXPECT_LE(out.horizon_steps, 6u);
}

// --- Satellite (c): fault during an in-flight horizon adoption ------------
//
// Differential pair over the fault's arrival order relative to the adoption
// window. The horizon step at t=20 schedules its adoption for t=30
// (replan_delay_s = 10). Run A injects a node failure at t=21 — inside the
// window — so the generation guard must discard the in-flight plan: zero
// horizon activations. Run B injects the same fault at t=31 — after the
// window — so the adoption lands first: exactly one activation. Everything
// else (cadence, seed, park) is identical.
struct GenerationGuardFixture : ReplanSimFixture {
  FaultSimResult run(double fault_time_s, util::telemetry::Registry* registry) {
    FaultSchedule schedule;
    schedule.events.push_back(
        {fault_time_s, FaultKind::kNodeFail, /*target=*/1, 0.0});
    FaultSimOptions options;
    options.sim.duration_seconds = 32.0;
    options.sim.seed = 41;
    options.sim.telemetry = registry;
    core::ReplannerOptions replan;
    replan.cadence_s = 20.0;
    replan.tracking_error_threshold = 0.0;  // cadence-only: one step at t=20
    replan.sensor_period_s = 5.0;
    options.replan = replan;
    return simulate_with_faults(dc(), *model, assignment, schedule, options);
  }
};

TEST_F(GenerationGuardFixture, FaultInsideTheAdoptionWindowSupersedesThePlan) {
  init(0.6);
  util::telemetry::Registry registry;
  const FaultSimResult out = run(/*fault_time_s=*/21.0, &registry);
  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  ASSERT_EQ(out.faults.size(), 1u);
  EXPECT_TRUE(out.faults[0].safe);
  check_accounting(out.sim);

  // The step fired and verified a plan...
  EXPECT_EQ(out.horizon_steps, 1u);
  EXPECT_EQ(out.horizon_adoptions, 1u);
  // ...but the fault at t=21 bumped the generation before the t=30
  // actuation instant: the stale plan must never take effect. The plan in
  // force afterwards is the fault-recovery chain's, alone.
  EXPECT_EQ(registry.counter_value("replan.adoptions_activated"), 0u);
}

TEST_F(GenerationGuardFixture, FaultAfterTheAdoptionWindowKeepsThePlan) {
  init(0.6);
  util::telemetry::Registry registry;
  const FaultSimResult out = run(/*fault_time_s=*/31.0, &registry);
  ASSERT_TRUE(out.status.ok()) << out.status.to_string();
  ASSERT_EQ(out.faults.size(), 1u);
  EXPECT_TRUE(out.faults[0].safe);
  check_accounting(out.sim);

  EXPECT_EQ(out.horizon_steps, 1u);
  EXPECT_EQ(out.horizon_adoptions, 1u);
  // The adoption actuated at t=30, before the fault existed: exactly one
  // activation. Combined with the run above, the only difference is the
  // fault's position relative to the in-flight window — the guard resolves
  // the race to exactly one adopted plan either way.
  EXPECT_EQ(registry.counter_value("replan.adoptions_activated"), 1u);
}

}  // namespace
}  // namespace tapo::sim
