// Differential tests for the online routing paths (docs/SCHEDULER.md):
// scan vs indexed selection and serial vs component-sharded simulation must
// produce bit-identical SimResults — same decisions, same counters, same
// doubles — across seeds, policies, fault scenarios and thread counts.
#include <gtest/gtest.h>

#include <memory>

#include "core/assigner.h"
#include "sim/des.h"
#include "sim/faults.h"
#include "testutil.h"
#include "thermal/heatflow.h"
#include "util/telemetry.h"

namespace tapo::sim {
namespace {

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.to_string();
  ASSERT_TRUE(b.status.ok()) << b.status.to_string();
  EXPECT_EQ(a.total_reward, b.total_reward);
  EXPECT_EQ(a.reward_rate, b.reward_rate);
  EXPECT_EQ(a.mean_tracking_error, b.mean_tracking_error);
  EXPECT_EQ(a.energy_kwh, b.energy_kwh);
  EXPECT_EQ(a.reward_per_kwh, b.reward_per_kwh);
  ASSERT_EQ(a.per_type.size(), b.per_type.size());
  for (std::size_t i = 0; i < a.per_type.size(); ++i) {
    EXPECT_EQ(a.per_type[i].arrived, b.per_type[i].arrived) << "type " << i;
    EXPECT_EQ(a.per_type[i].assigned, b.per_type[i].assigned) << "type " << i;
    EXPECT_EQ(a.per_type[i].dropped, b.per_type[i].dropped) << "type " << i;
    EXPECT_EQ(a.per_type[i].completed_in_time, b.per_type[i].completed_in_time);
    EXPECT_EQ(a.per_type[i].completed_late, b.per_type[i].completed_late);
    EXPECT_EQ(a.per_type[i].reward, b.per_type[i].reward);
    EXPECT_EQ(a.per_type[i].desired_rate, b.per_type[i].desired_rate);
  }
}

struct RoutingFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(211, 10, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible);
  }

  SimOptions options(core::RouteMode mode, std::uint64_t seed) const {
    SimOptions o;
    o.duration_seconds = 120.0;
    o.warmup_seconds = 10.0;
    o.seed = seed;
    o.scheduler.route_mode = mode;
    return o;
  }

  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

TEST_F(RoutingFixture, IndexedSimulationMatchesScanAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 17u, 424242u}) {
    const SimResult scan =
        simulate(scenario->dc, assignment, options(core::RouteMode::kScan, seed));
    const SimResult indexed = simulate(scenario->dc, assignment,
                                       options(core::RouteMode::kIndexed, seed));
    expect_identical(scan, indexed);
  }
}

TEST_F(RoutingFixture, IndexedSimulationMatchesScanForAblationPolicies) {
  for (const auto policy :
       {core::SchedulerPolicy::EarliestFinish, core::SchedulerPolicy::Random}) {
    SimOptions scan = options(core::RouteMode::kScan, 5);
    scan.scheduler.policy = policy;
    SimOptions indexed = options(core::RouteMode::kIndexed, 5);
    indexed.scheduler.policy = policy;
    expect_identical(simulate(scenario->dc, assignment, scan),
                     simulate(scenario->dc, assignment, indexed));
  }
}

TEST_F(RoutingFixture, ValidatedIndexSurvivesFullSimulation) {
  SimOptions o = options(core::RouteMode::kIndexed, 99);
  o.scheduler.validate_index = true;  // aborts internally on any divergence
  const SimResult r = simulate(scenario->dc, assignment, o);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.total_reward, 0.0);
}

TEST_F(RoutingFixture, ShardedSimulationBitIdenticalAcrossThreadCounts) {
  const SimResult serial =
      simulate(scenario->dc, assignment, options(core::RouteMode::kAuto, 31));
  for (const std::size_t threads : {2u, 8u}) {
    SimOptions o = options(core::RouteMode::kAuto, 31);
    o.threads = threads;
    const SimResult sharded = simulate(scenario->dc, assignment, o);
    expect_identical(serial, sharded);
  }
}

TEST_F(RoutingFixture, ShardedScanAlsoMatchesSerial) {
  // The sharding layer sits above the selection path; it must be exact for
  // the reference scan too, not just the index.
  const SimResult serial =
      simulate(scenario->dc, assignment, options(core::RouteMode::kScan, 77));
  SimOptions o = options(core::RouteMode::kScan, 77);
  o.threads = 4;
  expect_identical(serial, simulate(scenario->dc, assignment, o));
}

TEST_F(RoutingFixture, DisjointCandidateBlocksShardAndStayIdentical) {
  // Force a genuinely multi-component candidate structure: strip the TC
  // matrix to disjoint per-type core blocks so every type is its own
  // component and the sharded run exercises the merge across many shards.
  core::Assignment blocks = assignment;
  const std::size_t t = scenario->dc.num_task_types();
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t k = 0; k < scenario->dc.total_cores(); ++k) {
      if (k % t != i) blocks.tc(i, k) = 0.0;
    }
  }
  const SimResult serial =
      simulate(scenario->dc, blocks, options(core::RouteMode::kAuto, 13));
  for (const std::size_t threads : {2u, 8u}) {
    SimOptions o = options(core::RouteMode::kAuto, 13);
    o.threads = threads;
    expect_identical(serial, simulate(scenario->dc, blocks, o));
  }
}

TEST_F(RoutingFixture, ShardedRunRecordsEndOfRunTelemetry) {
  util::telemetry::Registry registry;
  SimOptions o = options(core::RouteMode::kAuto, 7);
  o.threads = 4;
  o.telemetry = &registry;
  const SimResult with = simulate(scenario->dc, assignment, o);
  o.telemetry = nullptr;
  const SimResult without = simulate(scenario->dc, assignment, o);
  expect_identical(with, without);  // observers never change the run
  EXPECT_GT(registry.counter_value("sim.arrival_batches"), 0u);
  EXPECT_GT(registry.counter_value("scheduler.routes_indexed"), 0u);
  EXPECT_EQ(registry.counter_value("scheduler.index_stale_pops"), 0u);
}

TEST_F(RoutingFixture, InvalidSchedulerOptionsSurfaceThroughSimulate) {
  SimOptions o = options(core::RouteMode::kAuto, 1);
  o.scheduler.warmup_seconds = 0.0;  // 0/0 ATC at the first arrival
  const SimResult r = simulate(scenario->dc, assignment, o);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.total_reward, 0.0);
}

// ---- Fault path -----------------------------------------------------------

TEST_F(RoutingFixture, FaultSimulationIdenticalAcrossRouteModes) {
  FaultSchedule schedule;
  schedule.events.push_back({30.0, FaultKind::kNodeFail, 1, 0.0});
  schedule.events.push_back({60.0, FaultKind::kCracDerate, 0, 0.7});

  FaultSimResult runs[2];
  const core::RouteMode modes[2] = {core::RouteMode::kScan,
                                    core::RouteMode::kIndexed};
  for (int m = 0; m < 2; ++m) {
    FaultSimOptions o;
    o.sim = options(modes[m], 9);
    o.recovery.replan_delay_s = 5.0;
    runs[m] =
        simulate_with_faults(scenario->dc, *model, assignment, schedule, o);
    ASSERT_TRUE(runs[m].status.ok()) << runs[m].status.to_string();
  }
  expect_identical(runs[0].sim, runs[1].sim);
  ASSERT_EQ(runs[0].faults.size(), runs[1].faults.size());
  for (std::size_t i = 0; i < runs[0].faults.size(); ++i) {
    EXPECT_EQ(runs[0].faults[i].tasks_killed, runs[1].faults[i].tasks_killed);
    EXPECT_EQ(runs[0].faults[i].tasks_requeued,
              runs[1].faults[i].tasks_requeued);
    EXPECT_EQ(runs[0].faults[i].replan_adopted,
              runs[1].faults[i].replan_adopted);
  }
  EXPECT_EQ(runs[0].replans_adopted, runs[1].replans_adopted);
}

}  // namespace
}  // namespace tapo::sim
