#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/assigner.h"
#include "testutil.h"
#include "thermal/heatflow.h"

namespace tapo::sim {
namespace {

std::vector<dc::TaskType> two_types(double r1, double r2) {
  dc::TaskType a, b;
  a.arrival_rate = r1;
  b.arrival_rate = r2;
  return {a, b};
}

TEST(Trace, PoissonMeanRateMatches) {
  const auto trace = generate_poisson_trace(two_types(5.0, 0.5), 2000.0,
                                            util::Rng(1));
  const auto rates = trace_rates(trace, 2, 2000.0);
  EXPECT_NEAR(rates[0], 5.0, 0.2);
  EXPECT_NEAR(rates[1], 0.5, 0.07);
}

TEST(Trace, PoissonIsSortedAndInRange) {
  const auto trace = generate_poisson_trace(two_types(3.0, 3.0), 100.0,
                                            util::Rng(2));
  for (std::size_t e = 1; e < trace.size(); ++e) {
    EXPECT_GE(trace[e].time, trace[e - 1].time);
  }
  for (const auto& e : trace) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, 100.0);
    EXPECT_LT(e.task_type, 2u);
  }
}

TEST(Trace, ZeroRateTypeNeverAppears) {
  const auto trace = generate_poisson_trace(two_types(0.0, 2.0), 200.0,
                                            util::Rng(3));
  for (const auto& e : trace) EXPECT_EQ(e.task_type, 1u);
}

TEST(Trace, MmppPreservesMeanRate) {
  MmppConfig config;
  config.burst_multiplier = 6.0;
  const auto trace = generate_mmpp_trace(two_types(5.0, 1.0), 5000.0, config,
                                         util::Rng(4));
  const auto rates = trace_rates(trace, 2, 5000.0);
  EXPECT_NEAR(rates[0], 5.0, 0.4);
  EXPECT_NEAR(rates[1], 1.0, 0.15);
}

TEST(Trace, MmppIsBurstierThanPoisson) {
  // Compare the variance of per-window counts at equal mean rate; the MMPP
  // index of dispersion must exceed Poisson's (which is ~1).
  const auto count_dispersion = [](const Trace& trace, double horizon) {
    const double window = 5.0;
    const int windows = static_cast<int>(horizon / window);
    std::vector<int> counts(windows, 0);
    for (const auto& e : trace) {
      const int w = static_cast<int>(e.time / window);
      if (w < windows) ++counts[w];
    }
    double mean = 0.0, sq = 0.0;
    for (int c : counts) {
      mean += c;
      sq += static_cast<double>(c) * c;
    }
    mean /= windows;
    const double var = sq / windows - mean * mean;
    return var / mean;
  };
  const auto types = two_types(8.0, 0.0);
  const auto poisson = generate_poisson_trace(types, 3000.0, util::Rng(5));
  MmppConfig config;
  config.burst_multiplier = 8.0;
  const auto mmpp = generate_mmpp_trace(types, 3000.0, config, util::Rng(5));
  EXPECT_NEAR(count_dispersion(poisson, 3000.0), 1.0, 0.3);
  EXPECT_GT(count_dispersion(mmpp, 3000.0), 2.0);
}

TEST(Trace, MmppWithUnitMultiplierIsPoissonLike) {
  MmppConfig config;
  config.burst_multiplier = 1.0;
  const auto trace = generate_mmpp_trace(two_types(4.0, 0.0), 2000.0, config,
                                         util::Rng(6));
  const auto rates = trace_rates(trace, 2, 2000.0);
  EXPECT_NEAR(rates[0], 4.0, 0.25);
}

TEST(Trace, CsvRoundTrip) {
  const auto trace = generate_poisson_trace(two_types(2.0, 1.0), 50.0,
                                            util::Rng(7));
  const std::string path = "/tmp/tapo_trace_test.csv";
  ASSERT_TRUE(save_trace_csv(trace, path));
  const auto loaded = load_trace_csv(path, 2);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), trace.size());
  for (std::size_t e = 0; e < trace.size(); ++e) {
    EXPECT_NEAR((*loaded)[e].time, trace[e].time, 1e-8);
    EXPECT_EQ((*loaded)[e].task_type, trace[e].task_type);
  }
  std::remove(path.c_str());
}

TEST(Trace, CsvRejectsBadHeaderAndOutOfRangeTypes) {
  const std::string path = "/tmp/tapo_trace_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("wrong,header\n1.0,0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_trace_csv(path, 2).has_value());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("time,task_type\n1.0,9\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_trace_csv(path, 2).has_value());
  std::remove(path.c_str());
}

struct TraceSimFixture : ::testing::Test {
  void SetUp() override {
    scenario = std::make_unique<scenario::Scenario>(
        test::make_small_scenario(601, 8, 2));
    model = std::make_unique<thermal::HeatFlowModel>(scenario->dc);
    const core::ThreeStageAssigner assigner(scenario->dc, *model);
    assignment = assigner.assign();
    ASSERT_TRUE(assignment.feasible);
  }
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<thermal::HeatFlowModel> model;
  core::Assignment assignment;
};

TEST_F(TraceSimFixture, PoissonTraceReplayMatchesLiveSimulator) {
  // simulate() and simulate_trace() share the accounting; with the same
  // arrival sample path (same per-type substreams) results must agree.
  SimOptions options;
  options.duration_seconds = 100.0;
  options.seed = 33;
  const auto live = simulate(scenario->dc, assignment, options);
  const auto trace = generate_poisson_trace(scenario->dc.task_types, 100.0,
                                            util::Rng(33));
  const auto replay = simulate_trace(scenario->dc, assignment, trace, options);
  EXPECT_NEAR(replay.total_reward, live.total_reward,
              1e-9 * std::max(1.0, live.total_reward));
  for (std::size_t i = 0; i < replay.per_type.size(); ++i) {
    EXPECT_EQ(replay.per_type[i].arrived, live.per_type[i].arrived);
    EXPECT_EQ(replay.per_type[i].dropped, live.per_type[i].dropped);
  }
}

TEST_F(TraceSimFixture, BurstinessDoesNotRaiseReward) {
  // At equal offered load, burstier arrivals can only hurt a deadline-based
  // admission policy (idle valleys cannot be banked).
  SimOptions options;
  options.duration_seconds = 400.0;
  options.warmup_seconds = 50.0;
  const auto poisson = generate_poisson_trace(scenario->dc.task_types, 400.0,
                                              util::Rng(8));
  MmppConfig config;
  config.burst_multiplier = 8.0;
  const auto bursty = generate_mmpp_trace(scenario->dc.task_types, 400.0,
                                          config, util::Rng(8));
  const auto smooth = simulate_trace(scenario->dc, assignment, poisson, options);
  const auto rough = simulate_trace(scenario->dc, assignment, bursty, options);
  EXPECT_LE(rough.reward_rate, smooth.reward_rate * 1.05);
}

TEST_F(TraceSimFixture, EmptyTraceYieldsNothing) {
  SimOptions options;
  options.duration_seconds = 10.0;
  const auto result = simulate_trace(scenario->dc, assignment, {}, options);
  EXPECT_DOUBLE_EQ(result.total_reward, 0.0);
  EXPECT_DOUBLE_EQ(result.drop_fraction(), 0.0);
}

}  // namespace
}  // namespace tapo::sim
