#include "sim/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "testutil.h"

namespace tapo::thermal {
namespace {

using test::make_tiny_dc;

TEST(Transient, SettlesToSteadyState) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{16.0};
  const std::vector<double> idle{0.36, 0.42};
  const std::vector<double> busy{0.7, 0.8};
  TransientOptions options;
  options.horizon_s = 3600.0;
  const auto result =
      simulate_transition(dc, model, cold, idle, cold, busy, options);
  EXPECT_TRUE(std::isfinite(result.settle_time_s));

  // Final inlet temperatures approach the steady state of the target load.
  const auto steady = model.solve(cold, busy);
  const double steady_max =
      *std::max_element(steady.node_in.begin(), steady.node_in.end());
  EXPECT_NEAR(result.max_node_inlet_c.back(), steady_max, 0.1);
}

TEST(Transient, NoTransitionMeansFlatTrace) {
  const auto dc = make_tiny_dc({0, 0}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{17.0};
  const std::vector<double> load{0.5, 0.5};
  const auto result = simulate_transition(dc, model, cold, load, cold, load);
  EXPECT_NEAR(result.max_node_inlet_c.front(), result.max_node_inlet_c.back(), 1e-6);
  EXPECT_DOUBLE_EQ(result.settle_time_s, 0.0);
}

TEST(Transient, MonotoneApproachHasNoOvershoot) {
  // With a pure relaxation model, stepping power up cannot overshoot the
  // target steady state - validating the paper's steady-state assumption.
  const auto dc = make_tiny_dc({0, 1, 0}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{16.0};
  const std::vector<double> idle{0.36, 0.42, 0.36};
  const std::vector<double> busy{0.79, 0.93, 0.79};
  TransientOptions options;
  options.horizon_s = 3600.0;
  const auto result =
      simulate_transition(dc, model, cold, idle, cold, busy, options);
  const auto steady = model.solve(cold, busy);
  const double steady_max =
      *std::max_element(steady.node_in.begin(), steady.node_in.end());
  EXPECT_LE(result.peak_node_inlet_c, steady_max + 1e-6);
}

TEST(Transient, RedlineFlagMatchesPeak) {
  auto dc = make_tiny_dc({0, 0}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{20.0};
  const std::vector<double> idle{0.36, 0.36};
  const std::vector<double> busy{0.79, 0.79};
  TransientOptions options;
  options.horizon_s = 1200.0;
  const auto ok = simulate_transition(dc, model, cold, idle, cold, busy, options);
  EXPECT_EQ(ok.redlines_held, ok.peak_node_inlet_c <= dc.redline_node_c + 1e-6);
}

TEST(Transient, SettleTimeScalesWithTimeConstant) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{16.0};
  const std::vector<double> idle{0.36, 0.42};
  const std::vector<double> busy{0.7, 0.8};
  TransientOptions fast, slow;
  fast.time_constant_s = 60.0;
  slow.time_constant_s = 240.0;
  fast.horizon_s = slow.horizon_s = 7200.0;
  const auto a = simulate_transition(dc, model, cold, idle, cold, busy, fast);
  const auto b = simulate_transition(dc, model, cold, idle, cold, busy, slow);
  EXPECT_LT(a.settle_time_s, b.settle_time_s);
}

TEST(Transient, MinutesScaleSettling) {
  // The paper's premise: thermal evolution is on the order of minutes.
  const auto dc = make_tiny_dc({0, 1, 0, 1}, 2);
  const HeatFlowModel model(dc);
  const std::vector<double> cold{16.0, 16.0};
  const std::vector<double> idle{0.36, 0.42, 0.36, 0.42};
  const std::vector<double> busy{0.7, 0.8, 0.7, 0.8};
  TransientOptions options;  // default 120 s time constant
  options.horizon_s = 7200.0;
  const auto result =
      simulate_transition(dc, model, cold, idle, cold, busy, options);
  EXPECT_GT(result.settle_time_s, 60.0);
  EXPECT_LT(result.settle_time_s, 3600.0);
}

}  // namespace
}  // namespace tapo::thermal
