// Anomaly detectors: planted ramps/drifts/spikes must fire, stationary and
// noisy series must stay quiet (a bounded false-positive pass over seeded
// noise), and the Registry and re-read Snapshot entry points must agree
// after a JSON round-trip.
#include "soak/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/telemetry.h"
#include "util/telemetry_read.h"

namespace tapo::soak {
namespace {

using util::telemetry::Sample;

std::vector<Sample> series_of(const std::vector<double>& values) {
  std::vector<Sample> samples;
  for (std::size_t i = 0; i < values.size(); ++i) {
    samples.push_back({static_cast<double>(i), values[i]});
  }
  return samples;
}

TEST(Ramp, FiresOnPlantedMonotoneRamp) {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(static_cast<double>(i));
  const auto a = detect_monotone_ramp("q", series_of(values));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->detector, "ramp");
  EXPECT_EQ(a->series, "q");
  EXPECT_GT(a->value, 8.0);
}

TEST(Ramp, FiresThroughSmallNoise) {
  util::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(static_cast<double>(i) + rng.uniform(-0.4, 0.4));
  }
  EXPECT_TRUE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Ramp, QuietOnStationarySeries) {
  std::vector<double> values(64, 5.0);
  EXPECT_FALSE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Ramp, QuietOnRampThatDrainsBack) {
  // Up then down: the fill-and-drain shape a healthy queue traces.
  std::vector<double> values;
  for (int i = 0; i < 32; ++i) values.push_back(static_cast<double>(i));
  for (int i = 32; i > 0; --i) values.push_back(static_cast<double>(i));
  EXPECT_FALSE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Ramp, QuietBelowAbsoluteRise) {
  // Perfectly monotone but tiny: a queue settling from 0 to 3 is healthy.
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(i * 3.0 / 63.0);
  EXPECT_FALSE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Ramp, QuietOnShortSeries) {
  std::vector<double> values = {0, 10, 20, 30};
  EXPECT_FALSE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Ramp, RelativeFactorSuppressesHighBaselineCreep) {
  // From 100 to 120: rise 20 > 8 absolute, but only 1.2x the baseline.
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(100.0 + i * 20.0 / 63.0);
  EXPECT_FALSE(detect_monotone_ramp("q", series_of(values)).has_value());
}

TEST(Drift, FiresOnPlantedStepDrift) {
  std::vector<double> values(48, 1.0);
  for (int i = 0; i < 16; ++i) values.push_back(2.0);
  const auto a = detect_drift("e", series_of(values));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->detector, "drift");
  EXPECT_GT(a->value, a->threshold);
}

TEST(Drift, QuietOnStationaryNoise) {
  util::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(1.0 + rng.normal(0.0, 0.05));
  EXPECT_FALSE(detect_drift("e", series_of(values)).has_value());
}

TEST(Drift, MinBandAbsorbsNearConstantSeries) {
  // Stddev ~0 would make any wobble fire without the absolute band floor.
  std::vector<double> values(60, 0.5);
  values.push_back(0.52);
  values.push_back(0.52);
  EXPECT_FALSE(detect_drift("e", series_of(values)).has_value());
}

TEST(Spike, FiresOnHighFallbackFraction) {
  const auto a = detect_fallback_spike(5, 10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->detector, "fallback_spike");
  EXPECT_DOUBLE_EQ(a->value, 0.5);
}

TEST(Spike, QuietOnLowFractionOrFewSolves) {
  EXPECT_FALSE(detect_fallback_spike(1, 100).has_value());
  EXPECT_FALSE(detect_fallback_spike(3, 4).has_value());  // under min_solves
  EXPECT_FALSE(detect_fallback_spike(0, 0).has_value());
}

TEST(Spike, FiresOnFtBudgetPressure) {
  const auto a = detect_ft_budget_pressure(6, 10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->detector, "ft_budget_pressure");
  EXPECT_EQ(a->series, "lp.session.ft_budget_exhausted");
  EXPECT_DOUBLE_EQ(a->value, 0.6);
}

TEST(Spike, QuietOnOccasionalFtBudgetExhaustion) {
  // Half the resumes exhausting is the boundary (<=), and a handful of
  // resumes is below the evidence floor regardless of the ratio.
  EXPECT_FALSE(detect_ft_budget_pressure(5, 10).has_value());
  EXPECT_FALSE(detect_ft_budget_pressure(4, 4).has_value());
  EXPECT_FALSE(detect_ft_budget_pressure(0, 0).has_value());
}

TEST(ReplanStorm, FiresOnABurstOfSteps) {
  // 12 horizon steps inside 10 s; the default budget is 8 per 30 s window.
  std::vector<Sample> samples;
  for (int i = 0; i < 12; ++i) {
    samples.push_back({static_cast<double>(i), static_cast<double>(i + 1)});
  }
  const auto a = detect_replan_storm("replan.step_times", samples, {});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->detector, "replan_storm");
  EXPECT_EQ(a->series, "replan.step_times");
  EXPECT_DOUBLE_EQ(a->value, 12.0);
  EXPECT_DOUBLE_EQ(a->threshold, 8.0);
}

TEST(ReplanStorm, QuietOnHealthyCadence) {
  // 16 steps at a 20 s cadence: at most 2 fall in any 30 s window.
  std::vector<Sample> samples;
  for (int i = 0; i < 16; ++i) {
    samples.push_back({20.0 * i, static_cast<double>(i + 1)});
  }
  EXPECT_FALSE(
      detect_replan_storm("replan.step_times", samples, {}).has_value());
}

TEST(ReplanStorm, QuietAtExactlyTheBudget) {
  // Exactly max_steps in one window is allowed; the detector fires only
  // strictly above the budget.
  AnomalyOptions options;
  options.replan_storm_window_s = 30.0;
  options.replan_storm_max_steps = 8;
  std::vector<Sample> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back({static_cast<double>(i), static_cast<double>(i + 1)});
  }
  samples.push_back({200.0, 9.0});  // 9th step far outside the window
  EXPECT_FALSE(
      detect_replan_storm("replan.step_times", samples, options).has_value());
}

TEST(ReplanStorm, QuietOnShortOrEmptySeries) {
  EXPECT_FALSE(detect_replan_storm("replan.step_times", {}, {}).has_value());
  std::vector<Sample> few = {{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_FALSE(detect_replan_storm("replan.step_times", few, {}).has_value());
}

// Bounded false positives: seeded stationary-but-noisy series across many
// draws must never fire either trend detector (the thresholds are sized for
// exactly this). Deterministic seed, so this is a regression pin, not a
// flaky statistical test.
TEST(Detectors, NoFalsePositivesOnStationaryNoise) {
  util::Rng rng(20260808);
  std::size_t fired = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const double level = rng.uniform(0.0, 50.0);
    const double sigma = rng.uniform(0.01, 0.2) * (level + 1.0);
    std::vector<double> values;
    for (int i = 0; i < 64; ++i) values.push_back(level + rng.normal(0.0, sigma));
    const auto samples = series_of(values);
    if (detect_monotone_ramp("q", samples).has_value()) ++fired;
    if (detect_drift("e", samples).has_value()) ++fired;
  }
  EXPECT_EQ(fired, 0u);
}

TEST(Detectors, RegistryWiringReportsInFixedOrder) {
  util::telemetry::Registry reg;
  for (int i = 0; i < 64; ++i) {
    const double t = static_cast<double>(i);
    reg.sample("scheduler.backlog", t, 0.5 + t * 3.0 / 63.0);  // past 1.25 rise
    reg.sample("sim.queue_depth", t, t * 2.0);                 // event ramp
    reg.sample("scheduler.tracking_error", t, i < 48 ? 0.1 : 2.0);
  }
  reg.count("lp.session.fallbacks", 9);
  reg.count("lp.session.solves", 10);
  const std::vector<Anomaly> anomalies = detect_anomalies(reg);
  ASSERT_EQ(anomalies.size(), 4u);
  EXPECT_EQ(anomalies[0].series, "scheduler.backlog");
  EXPECT_EQ(anomalies[1].series, "sim.queue_depth");
  EXPECT_EQ(anomalies[2].series, "scheduler.tracking_error");
  EXPECT_EQ(anomalies[3].series, "lp.session.fallbacks");
}

TEST(Detectors, SnapshotAgreesWithRegistryAfterJsonRoundTrip) {
  util::Rng rng(11);
  util::telemetry::Registry reg;
  for (int i = 0; i < 64; ++i) {
    const double t = static_cast<double>(i);
    reg.sample("scheduler.backlog", t, t * 0.05);  // grows to 3.2: fires
    reg.sample("scheduler.tracking_error", t, 0.2 + rng.normal(0.0, 0.01));
  }
  reg.count("lp.session.fallbacks", 2);
  reg.count("lp.session.solves", 40);

  const std::string json = reg.to_json_string();
  util::StatusOr<util::telemetry::Snapshot> snapshot =
      util::telemetry::parse_snapshot(json);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().to_string();

  const std::vector<Anomaly> from_registry = detect_anomalies(reg);
  const std::vector<Anomaly> from_snapshot = detect_anomalies(*snapshot);
  ASSERT_EQ(from_registry.size(), from_snapshot.size());
  ASSERT_EQ(from_registry.size(), 1u);
  for (std::size_t i = 0; i < from_registry.size(); ++i) {
    EXPECT_EQ(from_registry[i].detector, from_snapshot[i].detector);
    EXPECT_EQ(from_registry[i].series, from_snapshot[i].series);
    EXPECT_EQ(from_registry[i].value, from_snapshot[i].value);
    EXPECT_EQ(from_registry[i].threshold, from_snapshot[i].threshold);
    EXPECT_EQ(from_registry[i].detail, from_snapshot[i].detail);
  }
}

TEST(SnapshotReader, RejectsMalformedDocuments) {
  EXPECT_FALSE(util::telemetry::parse_snapshot("").ok());
  EXPECT_FALSE(util::telemetry::parse_snapshot("[1,2]").ok());
  EXPECT_FALSE(util::telemetry::parse_snapshot("{\"schema\":\"nope\"}").ok());
  EXPECT_FALSE(
      util::telemetry::parse_snapshot("{\"schema\":\"tapo-telemetry-v1\"")
          .ok());
  // Errors carry a line number like every tapo text-format reader.
  const auto bad = util::telemetry::parse_snapshot(
      "{\"schema\":\"tapo-telemetry-v1\",\n\"counters\":[]}");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tapo::soak
