// Differential coverage of the committed scenarios/ library: every profile
// parses, validates, round-trips through the canonical serializer exactly,
// and produces a feasible three-stage plan — unless it is tagged
// `expect infeasible`, in which case no plan may exist. TAPO_SCENARIOS_DIR
// is injected by tests/CMakeLists.txt so the suite runs from any build dir.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenario/profile.h"
#include "soak/runner.h"

namespace tapo::scenario {
namespace {

std::vector<ScenarioProfile> committed_library() {
  util::StatusOr<std::vector<ScenarioProfile>> loaded =
      load_profile_dir(TAPO_SCENARIOS_DIR);
  EXPECT_TRUE(loaded.ok()) << loaded.status().to_string();
  return loaded.ok() ? *loaded : std::vector<ScenarioProfile>{};
}

TEST(Library, HasTheCommittedProfiles) {
  const auto profiles = committed_library();
  EXPECT_GE(profiles.size(), 20u);
  std::set<std::string> names;
  for (const auto& p : profiles) names.insert(p.name);
  EXPECT_EQ(names.size(), profiles.size()) << "duplicate profile names";
  // Anchors the catalog: the paper-scale baseline and the stress ceiling.
  EXPECT_TRUE(names.count("paper-150"));
  EXPECT_TRUE(names.count("stress-600"));
  EXPECT_TRUE(names.count("infeasible-redline-30"));
}

TEST(Library, EveryProfileValidatesAndRoundTripsExactly) {
  for (const ScenarioProfile& p : committed_library()) {
    EXPECT_TRUE(p.validate().ok()) << p.name;
    const std::string canonical = serialize_profile(p);
    util::StatusOr<ScenarioProfile> reparsed = parse_profile(canonical);
    ASSERT_TRUE(reparsed.ok()) << p.name << ": "
                               << reparsed.status().to_string();
    EXPECT_EQ(*reparsed, p) << p.name;
    EXPECT_EQ(serialize_profile(*reparsed), canonical) << p.name;
    // Content hash is a pure function of the semantic profile.
    EXPECT_EQ(profile_hash(*reparsed), profile_hash(p)) << p.name;
  }
}

TEST(Library, HashesAreUniqueAcrossTheSuite) {
  std::set<std::uint64_t> hashes;
  const auto profiles = committed_library();
  for (const auto& p : profiles) hashes.insert(profile_hash(p));
  EXPECT_EQ(hashes.size(), profiles.size());
}

// Plan-only pass over the whole library: every profile must reach the
// feasibility its tag promises. The DES phase is exercised by the soak
// smoke job and tests/soak/test_runner.cpp; skipping it here keeps the
// tier-1 suite fast even with the 600-node stress profile included.
TEST(Library, EveryProfilePlansAsTagged) {
  soak::SoakOptions options;
  options.run_sim = false;
  const soak::SoakResult result =
      soak::run_suite(committed_library(), options);
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  for (const soak::ScenarioOutcome& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.pass) << outcome.name << ": " << outcome.report_json;
  }
}

}  // namespace
}  // namespace tapo::scenario
