// Soak runner determinism and cache behavior, in the style of
// tests/sim/test_faults.cpp bit-identity coverage: the same suite must
// produce byte-identical per-scenario reports at thread counts {1, 2, 8}
// and from a warm cache, cache keys must follow the documented
// invalidation rules (semantic change -> re-run; cosmetic change -> hit),
// and the planted-regression fixture must fail the suite.
#include "soak/runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/profile.h"

namespace tapo::soak {
namespace {

namespace fs = std::filesystem;

// Small, fast profiles: the determinism contract is scale-independent.
std::vector<scenario::ScenarioProfile> small_suite() {
  std::vector<scenario::ScenarioProfile> profiles;
  scenario::ScenarioProfile a;
  a.name = "runner-a";
  a.nodes = 10;
  a.cracs = 1;
  a.sim.duration_s = 30.0;
  a.sim.warmup_s = 3.0;
  a.sim.samples = 32;
  profiles.push_back(a);

  scenario::ScenarioProfile b = a;
  b.name = "runner-b";
  b.nodes = 12;
  b.seed = 4;
  b.arrival.kind = scenario::ArrivalOverlay::Kind::kScale;
  b.arrival.scale = 1.2;
  profiles.push_back(b);

  scenario::ScenarioProfile c = a;
  c.name = "runner-c faults";
  c.nodes = 14;
  scenario::FaultStorm storm;
  storm.seed = 3;
  storm.horizon_s = 25.0;
  storm.node_failures = 2;
  storm.node_repair_after_s = 8.0;
  c.faults = storm;
  profiles.push_back(c);
  return profiles;
}

std::vector<std::string> reports_of(const SoakResult& result) {
  std::vector<std::string> reports;
  for (const ScenarioOutcome& o : result.outcomes) {
    reports.push_back(o.report_json);
  }
  return reports;
}

struct TempDir {
  explicit TempDir(const std::string& stem)
      : path(fs::temp_directory_path() / stem) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

TEST(Runner, ReportsAreBitIdenticalAcrossThreadCounts) {
  const auto suite = small_suite();
  SoakOptions options;
  options.threads = 1;
  const SoakResult serial = run_suite(suite, options);
  ASSERT_TRUE(serial.status.ok());
  EXPECT_EQ(serial.executed, suite.size());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SoakOptions parallel_options;
    parallel_options.threads = threads;
    const SoakResult parallel = run_suite(suite, parallel_options);
    ASSERT_TRUE(parallel.status.ok());
    EXPECT_EQ(reports_of(parallel), reports_of(serial))
        << "threads=" << threads;
  }
}

TEST(Runner, WarmCacheSkipsAndReproducesReportsExactly) {
  const auto suite = small_suite();
  TempDir cache("tapo_soak_cache_test");
  SoakOptions options;
  options.threads = 2;
  options.cache_dir = cache.path.string();

  const SoakResult cold = run_suite(suite, options);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_EQ(cold.executed, suite.size());
  EXPECT_EQ(cold.cached, 0u);

  const SoakResult warm = run_suite(suite, options);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.cached, suite.size());
  EXPECT_EQ(reports_of(warm), reports_of(cold));
  for (const ScenarioOutcome& o : warm.outcomes) {
    EXPECT_TRUE(o.from_cache) << o.name;
  }
}

TEST(Runner, SemanticChangeInvalidatesOnlyThatEntry) {
  auto suite = small_suite();
  TempDir cache("tapo_soak_cache_invalidation_test");
  SoakOptions options;
  options.threads = 2;
  options.cache_dir = cache.path.string();
  const SoakResult cold = run_suite(suite, options);
  ASSERT_TRUE(cold.status.ok());

  // Rule 1: a semantic field change re-keys the profile and re-runs it.
  suite[1].seed += 1;
  const SoakResult after = run_suite(suite, options);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.executed, 1u);
  EXPECT_EQ(after.cached, suite.size() - 1);
  EXPECT_FALSE(after.outcomes[1].from_cache);
  EXPECT_NE(after.outcomes[1].hash, cold.outcomes[1].hash);

  // Rule 2: cosmetic re-serialization (comments, blank lines) keys
  // identically — the hash covers the canonical form, not the file bytes.
  util::StatusOr<scenario::ScenarioProfile> cosmetic =
      scenario::parse_profile("# a comment\n\n" +
                              scenario::serialize_profile(suite[0]));
  ASSERT_TRUE(cosmetic.ok());
  EXPECT_EQ(scenario::profile_hash(*cosmetic),
            scenario::profile_hash(suite[0]));

  // Rule 3: the salt fences runner-behavior versions; it is part of the
  // hash preimage, so bumping it in a future change re-keys everything.
  EXPECT_NE(std::string(scenario::kProfileHashSalt).find("tapo-scenarios"),
            std::string::npos);
}

TEST(Runner, TelemetryArtifactWrittenOnExecutionNotOnCacheHit) {
  const auto suite = small_suite();
  TempDir cache("tapo_soak_artifact_cache");
  TempDir out("tapo_soak_artifact_out");
  SoakOptions options;
  options.threads = 2;
  options.cache_dir = cache.path.string();
  options.out_dir = out.path.string();
  const SoakResult cold = run_suite(suite, options);
  ASSERT_TRUE(cold.status.ok());
  std::size_t artifacts = 0;
  for (const auto& e : fs::directory_iterator(out.path)) {
    (void)e;
    ++artifacts;
  }
  EXPECT_EQ(artifacts, suite.size());
  fs::remove_all(out.path);
  fs::create_directories(out.path);
  const SoakResult warm = run_suite(suite, options);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_EQ(warm.cached, suite.size());
  EXPECT_TRUE(fs::is_empty(out.path)) << "cache hits must not rewrite artifacts";
}

TEST(Runner, PlantedRegressionFixtureFailsTheSuite) {
  util::StatusOr<std::vector<scenario::ScenarioProfile>> planted =
      scenario::load_profile_dir(TAPO_PLANTED_DIR);
  ASSERT_TRUE(planted.ok()) << planted.status().to_string();
  ASSERT_FALSE(planted->empty());
  const SoakResult result = run_suite(*planted, {});
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.pass());
  EXPECT_GT(result.failed, 0u);
  bool saw_ramp = false;
  for (const ScenarioOutcome& o : result.outcomes) {
    for (const Anomaly& a : o.anomalies) {
      if (a.detector == "ramp" && a.series == "scheduler.backlog") {
        saw_ramp = true;
      }
    }
  }
  EXPECT_TRUE(saw_ramp) << "planted queue ramp did not fire";

  // The planted replan-degradation scenario is the graceful-degradation
  // acceptance case: its horizon-step LP is capped at one simplex iteration,
  // so every trigger degrades — and the run must still PASS (no crash, no
  // anomaly), with the degraded-step counters visible in its report.
  bool saw_degraded_run = false;
  for (const ScenarioOutcome& o : result.outcomes) {
    if (o.name != "replan-degraded-40") continue;
    saw_degraded_run = true;
    EXPECT_TRUE(o.pass) << o.report_json;
    EXPECT_NE(o.report_json.find("\"replan\":{"), std::string::npos);
    EXPECT_EQ(o.report_json.find("\"degraded\":0,"), std::string::npos)
        << "planted solve deadline should degrade every step: "
        << o.report_json;
  }
  EXPECT_TRUE(saw_degraded_run) << "replan-degraded-40 fixture not loaded";
}

TEST(Runner, ReplanProfileReportCarriesHorizonCounters) {
  scenario::ScenarioProfile profile;
  profile.name = "replan-smoke";
  profile.nodes = 24;
  profile.sim.duration_s = 60.0;
  profile.sim.warmup_s = 6.0;
  profile.trace.kind = scenario::TraceOverlay::Kind::kDiurnal;
  profile.trace.amplitude = 0.5;
  profile.replan = scenario::ReplanSection{};
  profile.replan->cadence_s = 15.0;
  ASSERT_TRUE(profile.validate().ok());

  const SoakResult result = run_suite({profile}, {});
  ASSERT_TRUE(result.status.ok()) << result.status.to_string();
  ASSERT_EQ(result.outcomes.size(), 1u);
  const ScenarioOutcome& o = result.outcomes[0];
  EXPECT_TRUE(o.pass) << o.report_json;
  // The report embeds the receding-horizon accounting: steps fired and at
  // least one adoption on a healthy drifting run.
  EXPECT_NE(o.report_json.find("\"replan\":{\"steps\":"), std::string::npos)
      << o.report_json;
  EXPECT_EQ(o.report_json.find("\"steps\":0,"), std::string::npos)
      << o.report_json;
}

TEST(Runner, SuiteReportEmbedsScenarioReportsVerbatim) {
  const auto suite = small_suite();
  const SoakResult result = run_suite(suite, {});
  ASSERT_TRUE(result.status.ok());
  std::ostringstream os;
  write_suite_report(result, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"schema\":\"tapo-soak-suite-v1\""), std::string::npos);
  for (const ScenarioOutcome& o : result.outcomes) {
    EXPECT_NE(text.find(o.report_json), std::string::npos) << o.name;
  }
}

}  // namespace
}  // namespace tapo::soak
