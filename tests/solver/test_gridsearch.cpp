#include "solver/gridsearch.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tapo::solver {
namespace {

TEST(GridSearch, FindsQuadraticPeak1D) {
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    return -(x[0] - 3.7) * (x[0] - 3.7);
  };
  GridSearchOptions opt;
  opt.coarse_samples = 5;
  opt.refine_rounds = 4;
  opt.min_resolution = 0.01;
  const auto r = grid_search_maximize({0.0}, {10.0}, objective, opt);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.best_point[0], 3.7, 0.5);
}

TEST(GridSearch, FindsPeak2D) {
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    return -std::pow(x[0] - 2.0, 2) - std::pow(x[1] - 8.0, 2);
  };
  const auto r = grid_search_maximize({0.0, 0.0}, {10.0, 10.0}, objective);
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.best_point[0], 2.0, 1.5);
  EXPECT_NEAR(r.best_point[1], 8.0, 1.5);
}

TEST(GridSearch, AllInfeasibleReportsNotFound) {
  const auto objective = [](const std::vector<double>&) -> std::optional<double> {
    return std::nullopt;
  };
  const auto r = grid_search_maximize({0.0}, {1.0}, objective);
  EXPECT_FALSE(r.found);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(GridSearch, RespectsFeasibilityRegion) {
  // Peak at 9 but only x <= 5 feasible: must report a point in range.
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    if (x[0] > 5.0) return std::nullopt;
    return x[0];
  };
  GridSearchOptions opt;
  opt.coarse_samples = 6;
  opt.refine_rounds = 3;
  const auto r = grid_search_maximize({0.0}, {10.0}, objective, opt);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.best_point[0], 5.0 + 1e-9);
  EXPECT_GT(r.best_value, 3.9);
}

TEST(GridSearch, RefinementImprovesOverCoarse) {
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    return -std::fabs(x[0] - 1.234);
  };
  GridSearchOptions coarse_only;
  coarse_only.coarse_samples = 4;
  coarse_only.refine_rounds = 0;
  GridSearchOptions refined = coarse_only;
  refined.refine_rounds = 4;
  refined.min_resolution = 0.001;
  const auto r0 = grid_search_maximize({0.0}, {10.0}, objective, coarse_only);
  const auto r1 = grid_search_maximize({0.0}, {10.0}, objective, refined);
  EXPECT_GE(r1.best_value, r0.best_value);
  EXPECT_LT(std::fabs(r1.best_point[0] - 1.234), std::fabs(r0.best_point[0] - 1.234) + 1e-12);
}

TEST(UniformCoordinate, FindsSharedOptimumFast) {
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    double s = 0.0;
    for (double v : x) s -= (v - 6.0) * (v - 6.0);
    return s;
  };
  const auto r = uniform_then_coordinate_maximize({0.0, 0.0, 0.0},
                                                  {10.0, 10.0, 10.0}, objective);
  ASSERT_TRUE(r.found);
  for (double v : r.best_point) EXPECT_NEAR(v, 6.0, 1.0);
}

TEST(UniformCoordinate, CoordinateDescentBreaksSymmetry) {
  // Optimum is asymmetric: x0 near 2, x1 near 8.
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    return -std::pow(x[0] - 2.0, 2) - std::pow(x[1] - 8.0, 2);
  };
  GridSearchOptions opt;
  opt.refine_rounds = 6;
  opt.min_resolution = 0.25;
  const auto r = uniform_then_coordinate_maximize({0.0, 0.0}, {10.0, 10.0},
                                                  objective, opt);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.best_point[0], r.best_point[1]);
}

TEST(UniformCoordinate, CheaperThanFullGridIn3D) {
  std::size_t full_evals = 0, uc_evals = 0;
  const auto count_full = [&](const std::vector<double>&) -> std::optional<double> {
    ++full_evals;
    return 1.0;
  };
  const auto count_uc = [&](const std::vector<double>&) -> std::optional<double> {
    ++uc_evals;
    return 1.0;
  };
  const std::vector<double> lo(3, 0.0), hi(3, 10.0);
  grid_search_maximize(lo, hi, count_full);
  uniform_then_coordinate_maximize(lo, hi, count_uc);
  EXPECT_LT(uc_evals, full_evals);
}

TEST(UniformCoordinate, FallsBackToGridWhenUniformInfeasible) {
  // Feasible only when coordinates differ: x0 + 1 <= x1.
  const auto objective = [](const std::vector<double>& x) -> std::optional<double> {
    if (x[0] + 1.0 > x[1]) return std::nullopt;
    return x[0] + x[1];
  };
  GridSearchOptions opt;
  opt.coarse_samples = 6;
  const auto r = uniform_then_coordinate_maximize({0.0, 0.0}, {10.0, 10.0},
                                                  objective, opt);
  EXPECT_TRUE(r.found);
}

}  // namespace
}  // namespace tapo::solver
