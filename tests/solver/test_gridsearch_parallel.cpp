// Differential tests for the parallel grid-search path: for seeded random
// objectives — smooth, plateau-heavy (exact value ties), partially and fully
// infeasible — the GridSearchResult at threads = {2, 8} must be *exactly*
// equal to the serial threads = 1 result: same best point, same best value
// bit-for-bit, same evaluation count. This is the determinism contract the
// Stage-1 setpoint sweep relies on.
#include "solver/gridsearch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace tapo::solver {
namespace {

// A deterministic pseudo-random objective built once from a seed and then
// shared (read-only) across evaluation threads. Mixes shifted quadratics and
// sinusoids; optional quantization forces exact value ties; an optional
// infeasibility band on coordinate 0 exercises nullopt handling.
class RandomObjective {
 public:
  RandomObjective(std::uint64_t seed, std::size_t dims, bool quantize,
                  bool with_infeasible_band) {
    util::Rng rng(seed);
    center_.resize(dims);
    weight_.resize(dims);
    freq_.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      center_[d] = rng.uniform(0.0, 10.0);
      weight_[d] = rng.uniform(0.2, 2.0);
      freq_[d] = rng.uniform(0.3, 2.0);
    }
    quantum_ = quantize ? rng.uniform(0.5, 2.0) : 0.0;
    if (with_infeasible_band) {
      band_lo_ = rng.uniform(0.0, 8.0);
      band_hi_ = band_lo_ + rng.uniform(0.5, 2.0);
    }
  }

  std::optional<double> operator()(const std::vector<double>& x) const {
    if (band_hi_ > band_lo_ && x[0] >= band_lo_ && x[0] <= band_hi_) {
      return std::nullopt;
    }
    double v = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d) {
      v -= weight_[d] * (x[d] - center_[d]) * (x[d] - center_[d]);
      v += std::sin(freq_[d] * x[d]);
    }
    if (quantum_ > 0.0) v = quantum_ * std::floor(v / quantum_);
    return v;
  }

 private:
  std::vector<double> center_, weight_, freq_;
  double quantum_ = 0.0;
  double band_lo_ = 0.0, band_hi_ = -1.0;
};

void expect_identical(const GridSearchResult& serial,
                      const GridSearchResult& parallel) {
  EXPECT_EQ(serial.found, parallel.found);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.best_value, parallel.best_value);  // exact, not NEAR
  EXPECT_EQ(serial.best_point, parallel.best_point);
}

GridSearchOptions options_for(std::uint64_t seed, std::size_t threads) {
  GridSearchOptions opt;
  opt.coarse_samples = 3 + static_cast<std::size_t>(seed % 4);  // 3..6
  opt.refine_rounds = 1 + static_cast<std::size_t>(seed % 3);   // 1..3
  opt.min_resolution = 0.05;
  opt.threads = threads;
  return opt;
}

TEST(GridSearchParallel, FullGridMatchesSerialOnRandomObjectives) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::size_t dims = 1 + static_cast<std::size_t>(seed % 3);
    const RandomObjective fn(seed, dims, /*quantize=*/seed % 4 == 0,
                             /*with_infeasible_band=*/seed % 3 == 0);
    const std::vector<double> lo(dims, 0.0), hi(dims, 10.0);
    const auto serial =
        grid_search_maximize(lo, hi, std::cref(fn), options_for(seed, 1));
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(testing::Message() << "seed=" << seed << " threads=" << threads);
      const auto parallel =
          grid_search_maximize(lo, hi, std::cref(fn), options_for(seed, threads));
      expect_identical(serial, parallel);
    }
  }
}

TEST(GridSearchParallel, UniformCoordinateMatchesSerialOnRandomObjectives) {
  for (std::uint64_t seed = 100; seed < 124; ++seed) {
    const std::size_t dims = 1 + static_cast<std::size_t>(seed % 4);
    const RandomObjective fn(seed, dims, /*quantize=*/seed % 5 == 0,
                             /*with_infeasible_band=*/seed % 2 == 0);
    const std::vector<double> lo(dims, 0.0), hi(dims, 10.0);
    const auto serial = uniform_then_coordinate_maximize(lo, hi, std::cref(fn),
                                                         options_for(seed, 1));
    for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(testing::Message() << "seed=" << seed << " threads=" << threads);
      const auto parallel = uniform_then_coordinate_maximize(
          lo, hi, std::cref(fn), options_for(seed, threads));
      expect_identical(serial, parallel);
    }
  }
}

TEST(GridSearchParallel, AllInfeasibleMatchesSerial) {
  const auto never = [](const std::vector<double>&) -> std::optional<double> {
    return std::nullopt;
  };
  const std::vector<double> lo(2, 0.0), hi(2, 10.0);
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    GridSearchOptions opt;
    opt.threads = threads;
    const auto full = grid_search_maximize(lo, hi, never, opt);
    EXPECT_FALSE(full.found);
    const auto uc = uniform_then_coordinate_maximize(lo, hi, never, opt);
    EXPECT_FALSE(uc.found);
    // Evaluation counts must not depend on the thread count either.
    GridSearchOptions serial_opt = opt;
    serial_opt.threads = 1;
    EXPECT_EQ(full.evaluations,
              grid_search_maximize(lo, hi, never, serial_opt).evaluations);
    EXPECT_EQ(uc.evaluations,
              uniform_then_coordinate_maximize(lo, hi, never, serial_opt).evaluations);
  }
}

TEST(GridSearchParallel, ConstantObjectivePicksLexicographicMinimum) {
  // Every point ties exactly, so the deterministic reduction must settle on
  // the lexicographically smallest candidate — the lower corner, which the
  // coarse grid contains — for every thread count.
  const auto constant = [](const std::vector<double>&) -> std::optional<double> {
    return 1.0;
  };
  const std::vector<double> lo{2.0, 3.0, 4.0}, hi{10.0, 10.0, 10.0};
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    GridSearchOptions opt;
    opt.threads = threads;
    const auto r = grid_search_maximize(lo, hi, constant, opt);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.best_point, lo);
    EXPECT_EQ(r.best_value, 1.0);
  }
}

TEST(GridSearchParallel, TieHeavyPlateauIsThreadCountInvariant) {
  // Coarse plateaus: floor() collapses whole regions to identical values, so
  // almost every comparison during the reduction is an exact tie.
  const auto plateau = [](const std::vector<double>& x) -> std::optional<double> {
    double s = 0.0;
    for (double v : x) s += v;
    return std::floor(s / 3.0);
  };
  const std::vector<double> lo(2, 0.0), hi(2, 9.0);
  GridSearchOptions serial_opt;
  serial_opt.coarse_samples = 5;
  serial_opt.refine_rounds = 3;
  serial_opt.threads = 1;
  const auto serial = grid_search_maximize(lo, hi, plateau, serial_opt);
  const auto serial_uc = uniform_then_coordinate_maximize(lo, hi, plateau, serial_opt);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    GridSearchOptions opt = serial_opt;
    opt.threads = threads;
    expect_identical(serial, grid_search_maximize(lo, hi, plateau, opt));
    expect_identical(serial_uc,
                     uniform_then_coordinate_maximize(lo, hi, plateau, opt));
  }
}

}  // namespace
}  // namespace tapo::solver
