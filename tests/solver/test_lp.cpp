#include "solver/lp.h"

#include <gtest/gtest.h>

namespace tapo::solver {
namespace {

TEST(Lp, SimpleMaximization) {
  // max 3x + 2y s.t. x+y <= 4, x+3y <= 6 -> x=4, y=0, obj=12.
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 3);
  const auto y = p.add_variable(0, kLpInfinity, 2);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 4);
  p.add_constraint({{x, 1}, {y, 3}}, Relation::LessEq, 6);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.x[x], 4.0, 1e-9);
  EXPECT_NEAR(s.x[y], 0.0, 1e-9);
  EXPECT_LT(p.max_violation(s.x), 1e-9);
}

TEST(Lp, InteriorOptimum) {
  // max x + y s.t. 2x+y <= 4, x+2y <= 4 -> x=y=4/3, obj=8/3.
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  const auto y = p.add_variable(0, kLpInfinity, 1);
  p.add_constraint({{x, 2}, {y, 1}}, Relation::LessEq, 4);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::LessEq, 4);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(s.x[x], 4.0 / 3.0, 1e-9);
}

TEST(Lp, EqualityConstraint) {
  LpProblem p;
  const auto x = p.add_variable(0, 1, 1);
  const auto y = p.add_variable(0, 5, 1);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::Equal, 3);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.x[x] + s.x[y], 3.0, 1e-9);
}

TEST(Lp, GreaterEqConstraintWithMinimizationStyleObjective) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, -1);  // minimize x
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 2);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

TEST(Lp, DetectsInfeasible) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  p.add_constraint({{x, 1}}, Relation::LessEq, 1);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 2);
  EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Lp, DetectsInfeasibleViaBounds) {
  LpProblem p;
  const auto x = p.add_variable(0, 1, 1);
  p.add_constraint({{x, 1}}, Relation::GreaterEq, 5);
  EXPECT_EQ(solve_lp(p).status, LpStatus::Infeasible);
}

TEST(Lp, DetectsUnbounded) {
  LpProblem p;
  p.add_variable(0, kLpInfinity, 1);
  EXPECT_EQ(solve_lp(p).status, LpStatus::Unbounded);
}

TEST(Lp, BoundedVariableCapsUnboundedDirection) {
  LpProblem p;
  const auto x = p.add_variable(0, 7, 1);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.x[x], 7.0, 1e-9);
}

TEST(Lp, NegativeLowerBounds) {
  LpProblem p;
  const auto x = p.add_variable(-5, 5, 1);
  const auto y = p.add_variable(-5, 5, 2);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[x], -5.0, 1e-9);
  EXPECT_NEAR(s.x[y], 5.0, 1e-9);
}

TEST(Lp, NegativeRhsRowsAreStandardizedCorrectly) {
  // max -x - y s.t. -x - y <= -3 (i.e. x + y >= 3).
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, -1);
  const auto y = p.add_variable(0, kLpInfinity, -1);
  p.add_constraint({{x, -1}, {y, -1}}, Relation::LessEq, -3);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Lp, TransportationProblem) {
  // 2 sources cap 10, 3 sinks cap 8, rewards {1,2,3}: optimum 44.
  LpProblem p;
  const double r[3] = {1, 2, 3};
  std::size_t v[2][3];
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) v[i][j] = p.add_variable(0, kLpInfinity, r[j]);
  for (int i = 0; i < 2; ++i) {
    p.add_constraint({{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, Relation::LessEq, 10);
  }
  for (int j = 0; j < 3; ++j) {
    p.add_constraint({{v[0][j], 1}, {v[1][j], 1}}, Relation::LessEq, 8);
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 44.0, 1e-9);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  const auto y = p.add_variable(0, kLpInfinity, 1);
  for (int i = 0; i < 10; ++i) {
    p.add_constraint({{x, 1.0 + i * 1e-12}, {y, 1.0}}, Relation::LessEq, 2);
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-6);
}

TEST(Lp, RedundantEqualityRowsHandled) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  const auto y = p.add_variable(0, kLpInfinity, 0);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::Equal, 2);
  p.add_constraint({{x, 2}, {y, 2}}, Relation::Equal, 4);  // redundant copy
  p.add_constraint({{y, 1}}, Relation::LessEq, 1);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 0.0, 1e-9);
}

TEST(Lp, FixedVariableViaEqualBounds) {
  LpProblem p;
  const auto x = p.add_variable(2, 2, 5);
  const auto y = p.add_variable(0, kLpInfinity, 1);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 6);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 4.0, 1e-9);
  EXPECT_NEAR(s.objective, 14.0, 1e-9);
}

TEST(Lp, DualsOfBindingRowsArePositive) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 3);
  const auto y = p.add_variable(0, kLpInfinity, 2);
  p.add_constraint({{x, 1}, {y, 1}}, Relation::LessEq, 4);   // binding
  p.add_constraint({{x, 1}, {y, 3}}, Relation::LessEq, 100); // slack
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  ASSERT_EQ(s.duals.size(), 2u);
  EXPECT_NEAR(s.duals[0], 3.0, 1e-9);  // marginal value of the binding row
  EXPECT_NEAR(s.duals[1], 0.0, 1e-9);
}

TEST(Lp, ObjectiveValueHelperMatchesSolution) {
  LpProblem p;
  const auto x = p.add_variable(0, 3, 2);
  p.add_constraint({{x, 1}}, Relation::LessEq, 2);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_DOUBLE_EQ(p.objective_value(s.x), s.objective);
}

TEST(Lp, MaxViolationDetectsInfeasiblePoint) {
  LpProblem p;
  const auto x = p.add_variable(0, 1, 1);
  p.add_constraint({{x, 1}}, Relation::LessEq, 0.5);
  EXPECT_NEAR(p.max_violation({0.8}), 0.3, 1e-12);
  EXPECT_NEAR(p.max_violation({2.0}), 1.5, 1e-12);  // bound violation dominates
  EXPECT_DOUBLE_EQ(p.max_violation({0.25}), 0.0);
}

TEST(Lp, IterationLimitReported) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  const auto y = p.add_variable(0, kLpInfinity, 1);
  p.add_constraint({{x, 1}, {y, 2}}, Relation::LessEq, 4);
  p.add_constraint({{x, 2}, {y, 1}}, Relation::LessEq, 4);
  LpOptions options;
  options.max_iterations = 1;
  const auto s = solve_lp(p, options);
  EXPECT_EQ(s.status, LpStatus::IterLimit);
}

TEST(Lp, ZeroRhsEqualityFeasibleAtOrigin) {
  LpProblem p;
  const auto x = p.add_variable(0, kLpInfinity, 1);
  const auto y = p.add_variable(0, kLpInfinity, -2);
  p.add_constraint({{x, 1}, {y, -1}}, Relation::Equal, 0);
  p.add_constraint({{x, 1}}, Relation::LessEq, 3);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  // x = y; objective x - 2y = -x <= 0, best at x=y=0.
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

}  // namespace
}  // namespace tapo::solver
