// Differential and warm-start tests for the two LP engines.
//
// The dense tableau solver is the oracle: the revised engine must agree with
// it on status for every random instance and on the objective to 1e-7 when
// both report Optimal. Warm starts must never change what is computed — a
// warm re-solve is checked against the cold solve of the same problem, and a
// re-solve that lands on the same basis must reproduce the cold result
// bit-for-bit (canonical extraction, see docs/SOLVER.md).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "solver/lp.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace tapo::solver {
namespace {

struct RandomLp {
  LpProblem problem;
  std::vector<Relation> rels;
  std::vector<double> rhs;
  std::vector<std::vector<std::pair<std::size_t, double>>> terms;
};

RandomLp make_random_lp(util::Rng& rng, std::size_t n_vars, std::size_t n_rows) {
  RandomLp lp;
  for (std::size_t v = 0; v < n_vars; ++v) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi =
        rng.next_double() < 0.7 ? lo + rng.uniform(0.5, 4.0) : kLpInfinity;
    lp.problem.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t v = 0; v < n_vars; ++v) {
      if (rng.next_double() < 0.6) terms.emplace_back(v, rng.uniform(-1.5, 1.5));
    }
    const double pick = rng.next_double();
    Relation rel = Relation::LessEq;
    double rhs = rng.uniform(0.5, 6.0);
    if (pick < 0.15) {
      rel = Relation::GreaterEq;
      rhs = rng.uniform(-6.0, -0.5);
    } else if (pick < 0.25) {
      rel = Relation::Equal;
      rhs = rng.uniform(-1.0, 1.0);
    }
    lp.rels.push_back(rel);
    lp.rhs.push_back(rhs);
    lp.terms.push_back(terms);
    lp.problem.add_constraint(std::move(terms), rel, rhs);
  }
  return lp;
}

// Rebuilds the problem with each rhs shifted by delta[r] (same structure, so
// a basis exported from the original remains importable).
LpProblem with_shifted_rhs(const RandomLp& lp, const std::vector<double>& delta) {
  LpProblem shifted;
  for (std::size_t v = 0; v < lp.problem.num_vars(); ++v) {
    shifted.add_variable(lp.problem.lower_bound(v), lp.problem.upper_bound(v),
                         lp.problem.objective_coeff(v));
  }
  for (std::size_t r = 0; r < lp.rels.size(); ++r) {
    shifted.add_constraint(lp.terms[r], lp.rels[r], lp.rhs[r] + delta[r]);
  }
  return shifted;
}

LpSolution solve_with(const LpProblem& problem, LpEngine engine,
                      const LpBasis* warm = nullptr) {
  LpOptions opt;
  opt.engine = engine;
  opt.warm_start = warm;
  return solve_lp(problem, opt);
}

// Revised engine under an explicit pricing rule (the dense oracle ignores
// LpOptions::pricing and always runs Dantzig).
LpSolution solve_with_pricing(const LpProblem& problem, LpPricing pricing,
                              const LpBasis* warm = nullptr) {
  LpOptions opt;
  opt.engine = LpEngine::Revised;
  opt.pricing = pricing;
  opt.warm_start = warm;
  return solve_lp(problem, opt);
}

constexpr LpPricing kAllPricing[] = {LpPricing::Dantzig, LpPricing::Devex,
                                     LpPricing::PartialDevex};

TEST(LpEngines, DifferentialRandomInstances) {
  util::Rng rng(0x1f2e3d4c5b6a7980ULL);
  std::size_t optimal_count = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const RandomLp lp = make_random_lp(rng, n_vars, n_rows);

    const LpSolution dense = solve_with(lp.problem, LpEngine::Dense);
    const LpSolution revised = solve_with(lp.problem, LpEngine::Revised);
    ASSERT_EQ(dense.status, revised.status)
        << "trial " << trial << ": dense=" << to_string(dense.status)
        << " revised=" << to_string(revised.status);
    if (dense.status != LpStatus::Optimal) continue;
    ++optimal_count;
    EXPECT_NEAR(dense.objective, revised.objective, 1e-7) << "trial " << trial;
    EXPECT_LT(lp.problem.max_violation(revised.x), 1e-6) << "trial " << trial;
    EXPECT_NEAR(lp.problem.objective_value(revised.x), revised.objective, 1e-7);
  }
  // The generator is tuned to keep a healthy share of instances feasible.
  EXPECT_GT(optimal_count, 60u);
}

TEST(LpEngines, WarmEqualsColdAfterRhsPerturbation) {
  util::Rng rng(0xabcddcba12344321ULL);
  std::size_t warm_accepted = 0, compared = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(3, 12));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const RandomLp lp = make_random_lp(rng, n_vars, n_rows);
    const LpSolution base = solve_with(lp.problem, LpEngine::Revised);
    if (!base.optimal()) continue;
    ASSERT_EQ(base.basis.size(),
              lp.problem.num_vars() + lp.problem.num_constraints());

    std::vector<double> delta(lp.problem.num_constraints());
    for (double& d : delta) d = rng.uniform(-0.2, 0.2);
    const LpProblem shifted = with_shifted_rhs(lp, delta);

    const LpSolution cold = solve_with(shifted, LpEngine::Revised);
    const LpSolution warm = solve_with(shifted, LpEngine::Revised, &base.basis);
    ASSERT_EQ(cold.status, warm.status) << "trial " << trial;
    if (warm.warm_used) ++warm_accepted;
    if (cold.status != LpStatus::Optimal) continue;
    ++compared;
    EXPECT_NEAR(cold.objective, warm.objective, 1e-8) << "trial " << trial;
    EXPECT_LT(shifted.max_violation(warm.x), 1e-6) << "trial " << trial;
  }
  EXPECT_GT(compared, 20u);
  // The basis from the unshifted problem should be accepted essentially
  // always (the structure is identical); require it was at least once.
  EXPECT_GT(warm_accepted, 0u);
}

TEST(LpEngines, WarmFromOwnOptimalBasisIsBitIdentical) {
  util::Rng rng(0x5eed5eed5eed5eedULL);
  std::size_t checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const RandomLp lp = make_random_lp(rng, 8, 5);
    const LpSolution cold = solve_with(lp.problem, LpEngine::Revised);
    if (!cold.optimal()) continue;
    const LpSolution warm = solve_with(lp.problem, LpEngine::Revised, &cold.basis);
    ASSERT_TRUE(warm.optimal());
    EXPECT_TRUE(warm.warm_used);
    // Same problem, same basis: canonical extraction makes the re-solve
    // reproduce the cold answer exactly, not merely within tolerance.
    EXPECT_EQ(cold.objective, warm.objective);
    ASSERT_EQ(cold.x.size(), warm.x.size());
    for (std::size_t v = 0; v < cold.x.size(); ++v) {
      EXPECT_EQ(cold.x[v], warm.x[v]) << "var " << v;
    }
    // The warm path verifies optimality without pivoting.
    EXPECT_LE(warm.iterations, cold.iterations);
    ++checked;
  }
  EXPECT_GT(checked, 15u);
}

TEST(LpEngines, CrossEngineWarmStartFromDenseBasis) {
  // A dense-exported basis names the same logical variables (the dense
  // engine's row flips rewrite rows into equivalent systems without changing
  // which slack belongs to which row), so it must warm-start the revised
  // engine.
  util::Rng rng(0x0123456789abcdefULL);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const RandomLp lp = make_random_lp(rng, 10, 6);
    const LpSolution dense = solve_with(lp.problem, LpEngine::Dense);
    if (!dense.optimal()) continue;
    const LpSolution warm = solve_with(lp.problem, LpEngine::Revised, &dense.basis);
    ASSERT_TRUE(warm.optimal());
    EXPECT_NEAR(dense.objective, warm.objective, 1e-8);
    if (warm.warm_used) ++accepted;
  }
  EXPECT_GT(accepted, 10u);
}

TEST(LpEngines, RefactorIntervalDoesNotDriftFromOracle) {
  util::Rng rng(0x7777aaaa3333bbbbULL);
  for (const std::size_t interval : {std::size_t{1}, std::size_t{4},
                                     std::size_t{1024}}) {
    util::Rng local = rng.fork(interval);
    for (int trial = 0; trial < 25; ++trial) {
      const RandomLp lp = make_random_lp(local, 12, 8);
      const LpSolution dense = solve_with(lp.problem, LpEngine::Dense);
      LpOptions opt;
      opt.engine = LpEngine::Revised;
      opt.refactor_interval = interval;
      const LpSolution revised = solve_lp(lp.problem, opt);
      ASSERT_EQ(dense.status, revised.status)
          << "interval " << interval << " trial " << trial;
      if (!dense.optimal()) continue;
      EXPECT_NEAR(dense.objective, revised.objective, 1e-7)
          << "interval " << interval << " trial " << trial;
    }
  }
}

TEST(LpEngines, FtAndEtaFilePathsAgreeWithTheOracle) {
  // The revised engine's two factor-maintenance paths — in-place
  // Forrest–Tomlin updates (the default) and the legacy product-form eta
  // file (ft_updates = false, kept for differential testing) — must both
  // match the dense oracle on status and objective, and a tightened FT
  // update budget (forcing frequent refactorizations) must not drift.
  util::Rng rng(0x6a09e667f3bcc908ULL);
  std::size_t optimal_count = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(3, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(2, 10));
    const RandomLp lp = make_random_lp(rng, n_vars, n_rows);
    const LpSolution dense = solve_with(lp.problem, LpEngine::Dense);

    LpOptions ft_opt;
    ft_opt.engine = LpEngine::Revised;
    ft_opt.ft_updates = true;
    const LpSolution ft = solve_lp(lp.problem, ft_opt);

    LpOptions eta_opt;
    eta_opt.engine = LpEngine::Revised;
    eta_opt.ft_updates = false;
    const LpSolution eta = solve_lp(lp.problem, eta_opt);

    LpOptions tight_opt = ft_opt;
    tight_opt.ft_max_updates = 2;
    const LpSolution tight = solve_lp(lp.problem, tight_opt);

    ASSERT_EQ(dense.status, ft.status) << "trial " << trial;
    ASSERT_EQ(dense.status, eta.status) << "trial " << trial;
    ASSERT_EQ(dense.status, tight.status) << "trial " << trial;
    if (!dense.optimal()) continue;
    ++optimal_count;
    EXPECT_NEAR(dense.objective, ft.objective, 1e-7) << "trial " << trial;
    EXPECT_NEAR(dense.objective, eta.objective, 1e-7) << "trial " << trial;
    EXPECT_NEAR(dense.objective, tight.objective, 1e-7) << "trial " << trial;
    EXPECT_LT(lp.problem.max_violation(ft.x), 1e-6) << "trial " << trial;
  }
  EXPECT_GT(optimal_count, 30u);
}

TEST(LpEngines, FtKnobValidation) {
  LpProblem lp;
  lp.add_variable(0.0, 1.0, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 0.5);
  LpOptions opt;
  opt.ft_max_updates = 0;
  EXPECT_DEATH(solve_lp(lp, opt), "ft_max_updates");
  opt = LpOptions{};
  opt.ft_fill_factor = 0.5;
  EXPECT_DEATH(solve_lp(lp, opt), "ft_fill_factor");
  opt = LpOptions{};
  opt.ft_pivot_tolerance = 0.0;
  EXPECT_DEATH(solve_lp(lp, opt), "ft_pivot_tolerance");
  opt = LpOptions{};
  opt.ft_pivot_tolerance = 1.5;
  EXPECT_DEATH(solve_lp(lp, opt), "ft_pivot_tolerance");
}

// Beale's classic cycling example: pure Dantzig pivoting with a
// smallest-index ratio tie-break cycles forever on this LP. The Bland
// fallback (both engines switch after a degenerate-iteration threshold)
// guarantees termination at the optimum.
TEST(LpEngines, BealeCyclingInstanceTerminates) {
  LpProblem lp;
  lp.add_variable(0.0, kLpInfinity, 0.75);    // x1
  lp.add_variable(0.0, kLpInfinity, -150.0);  // x2
  lp.add_variable(0.0, kLpInfinity, 0.02);    // x3
  lp.add_variable(0.0, kLpInfinity, -6.0);    // x4
  lp.add_constraint({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}},
                    Relation::LessEq, 0.0);
  lp.add_constraint({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}},
                    Relation::LessEq, 0.0);
  lp.add_constraint({{2, 1.0}}, Relation::LessEq, 1.0);

  for (const LpEngine engine : {LpEngine::Dense, LpEngine::Revised}) {
    const LpSolution sol = solve_with(lp, engine);
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 0.05, 1e-9);
  }
  // Every pricing rule must terminate here too: the degenerate-iteration
  // stall counter trips the Bland fallback regardless of the rule (Bland's
  // full lowest-index scan bypasses both the Devex scores and the partial
  // window — a windowed anti-cycling scan would forfeit the guarantee).
  for (const LpPricing pricing : kAllPricing) {
    const LpSolution sol = solve_with_pricing(lp, pricing);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << to_string(pricing);
    EXPECT_NEAR(sol.objective, 0.05, 1e-9) << to_string(pricing);
  }
}

// Pricing-rule differential: every rule is a different route to the same
// optimum. Across a random corpus all three rules must agree with the dense
// oracle on status and objective, and every returned point must actually be
// feasible. Iteration counts are logged (not asserted — rule quality is
// measured in bench/solver_perf.cpp, where Devex's whole point is that they
// differ).
TEST(LpEngines, PricingRulesDifferentialRandomInstances) {
  util::Rng rng(0x7788aa99bbcc0011ULL);
  std::size_t optimal_count = 0;
  std::size_t iters[3] = {0, 0, 0};
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    const RandomLp lp = make_random_lp(rng, n_vars, n_rows);
    const LpSolution dense = solve_with(lp.problem, LpEngine::Dense);
    for (int p = 0; p < 3; ++p) {
      const LpSolution sol = solve_with_pricing(lp.problem, kAllPricing[p]);
      ASSERT_EQ(dense.status, sol.status)
          << "trial " << trial << " pricing " << to_string(kAllPricing[p]);
      if (dense.status != LpStatus::Optimal) continue;
      EXPECT_NEAR(dense.objective, sol.objective, 1e-7)
          << "trial " << trial << " pricing " << to_string(kAllPricing[p]);
      EXPECT_LT(lp.problem.max_violation(sol.x), 1e-6)
          << "trial " << trial << " pricing " << to_string(kAllPricing[p]);
      iters[p] += sol.iterations;
    }
    if (dense.status == LpStatus::Optimal) ++optimal_count;
  }
  EXPECT_GT(optimal_count, 50u);
  for (int p = 0; p < 3; ++p) {
    ::testing::Test::RecordProperty(
        std::string("total_iterations_") + to_string(kAllPricing[p]),
        static_cast<int>(iters[p]));
  }
}

// A warm start interacts with each pricing rule the same way: the imported
// basis decides feasibility, the rule only orders the remaining pivots.
TEST(LpEngines, PricingRulesAgreeOnWarmStartedResolves) {
  util::Rng rng(0x31415926535897ULL);
  std::size_t compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(4, 12));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const RandomLp lp = make_random_lp(rng, n_vars, n_rows);
    const LpSolution base = solve_with(lp.problem, LpEngine::Revised);
    if (!base.optimal()) continue;
    std::vector<double> delta(n_rows);
    for (double& d : delta) d = rng.uniform(-0.3, 0.3);
    const LpProblem shifted = with_shifted_rhs(lp, delta);
    const LpSolution oracle = solve_with(shifted, LpEngine::Dense);
    for (const LpPricing pricing : kAllPricing) {
      const LpSolution warm = solve_with_pricing(shifted, pricing, &base.basis);
      ASSERT_EQ(oracle.status, warm.status) << to_string(pricing);
      if (!oracle.optimal()) continue;
      EXPECT_NEAR(oracle.objective, warm.objective, 1e-7) << to_string(pricing);
    }
    if (oracle.optimal()) ++compared;
  }
  EXPECT_GT(compared, 15u);
}

// parse_lp_pricing inverts to_string and rejects junk without clobbering out.
TEST(LpEngines, PricingNameRoundTrip) {
  for (const LpPricing pricing : kAllPricing) {
    LpPricing parsed = LpPricing::Dantzig;
    EXPECT_TRUE(parse_lp_pricing(to_string(pricing), &parsed));
    EXPECT_EQ(pricing, parsed);
  }
  LpPricing out = LpPricing::Devex;
  EXPECT_FALSE(parse_lp_pricing("steepest_edge", &out));
  EXPECT_EQ(out, LpPricing::Devex);
  EXPECT_FALSE(parse_lp_pricing(nullptr, &out));
}

TEST(LpEngines, IterLimitIsReportedNotLooped) {
  util::Rng rng(0x2222444466668888ULL);
  const RandomLp lp = make_random_lp(rng, 12, 8);
  for (const LpEngine engine : {LpEngine::Dense, LpEngine::Revised}) {
    LpOptions opt;
    opt.engine = engine;
    opt.max_iterations = 1;
    const LpSolution sol = solve_lp(lp.problem, opt);
    EXPECT_EQ(sol.status, LpStatus::IterLimit);
    EXPECT_TRUE(sol.basis.empty());  // no basis export off the optimal path
  }
}

TEST(LpEngines, MalformedWarmBasisFallsBackToCold) {
  util::Rng rng(0x1010202030304040ULL);
  const RandomLp lp = make_random_lp(rng, 8, 5);
  const LpSolution cold = solve_with(lp.problem, LpEngine::Revised);
  ASSERT_TRUE(cold.optimal());

  // Wrong slot count: must be rejected, counted, and solved cold anyway.
  LpBasis wrong_size;
  wrong_size.status.assign(3, LpBasisStatus::Basic);
  util::telemetry::Registry reg;
  LpOptions opt;
  opt.engine = LpEngine::Revised;
  opt.warm_start = &wrong_size;
  opt.telemetry = &reg;
  const LpSolution sol = solve_lp(lp.problem, opt);
  ASSERT_TRUE(sol.optimal());
  EXPECT_FALSE(sol.warm_used);
  EXPECT_EQ(sol.objective, cold.objective);
  EXPECT_EQ(reg.counter_value("lp.warm_rejects"), 1u);
  EXPECT_EQ(reg.counter_value("lp.warm_starts"), 0u);

  // Wrong basic count (all slots basic) must also fall back, not crash.
  LpBasis all_basic;
  all_basic.status.assign(
      lp.problem.num_vars() + lp.problem.num_constraints(),
      LpBasisStatus::Basic);
  const LpSolution sol2 = solve_with(lp.problem, LpEngine::Revised, &all_basic);
  ASSERT_TRUE(sol2.optimal());
  EXPECT_FALSE(sol2.warm_used);
  EXPECT_EQ(sol2.objective, cold.objective);
}

TEST(LpEngines, TelemetryCountsSolvesAndHistogram) {
  util::telemetry::Registry reg;
  LpProblem lp;
  lp.add_variable(0.0, 1.0, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 0.5);
  LpOptions opt;
  opt.telemetry = &reg;
  const LpSolution sol = solve_lp(lp, opt);
  ASSERT_TRUE(sol.optimal());
  EXPECT_EQ(reg.counter_value("lp.solves"), 1u);
  EXPECT_EQ(reg.counter_value("lp.iterations"), sol.iterations);
  const std::uint64_t bucketed = reg.counter_value("lp.iters.le_4") +
                                 reg.counter_value("lp.iters.le_16") +
                                 reg.counter_value("lp.iters.le_64") +
                                 reg.counter_value("lp.iters.le_256") +
                                 reg.counter_value("lp.iters.gt_256");
  EXPECT_EQ(bucketed, 1u);
}

TEST(LpEngines, SparseColumnsCoalesceDuplicates) {
  LpProblem lp;
  lp.add_variable(0.0, 1.0, 1.0);
  lp.add_variable(0.0, 1.0, 1.0);
  // Variable 0 appears twice in row 0: entries must coalesce to 3.0.
  lp.add_constraint({{0, 1.0}, {1, 2.0}, {0, 2.0}}, Relation::LessEq, 4.0);
  lp.add_constraint({{1, -1.0}}, Relation::GreaterEq, -1.0);
  const LpProblem::SparseColumns cols = lp.columns();
  ASSERT_EQ(cols.starts.size(), 3u);
  ASSERT_EQ(cols.starts[1] - cols.starts[0], 1u);
  EXPECT_EQ(cols.rows[cols.starts[0]], 0u);
  EXPECT_DOUBLE_EQ(cols.values[cols.starts[0]], 3.0);
  ASSERT_EQ(cols.starts[2] - cols.starts[1], 2u);
  EXPECT_EQ(cols.rows[cols.starts[1]], 0u);
  EXPECT_EQ(cols.rows[cols.starts[1] + 1], 1u);
}

}  // namespace
}  // namespace tapo::solver
