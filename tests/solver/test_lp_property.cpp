// Property-based tests for the simplex solver.
//
// Random LPs are checked with a complete optimality certificate: the primal
// point must be feasible, the returned duals must be sign-feasible, and the
// dual objective (with reduced costs priced against the box bounds) must
// equal the primal objective - weak duality then proves optimality.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "solver/lp.h"
#include "util/rng.h"

namespace tapo::solver {
namespace {

struct RandomLp {
  LpProblem problem;
  std::vector<std::vector<double>> rows;  // dense copies for the certificate
  std::vector<Relation> rels;
  std::vector<double> rhs;
};

RandomLp make_random_lp(util::Rng& rng, std::size_t n_vars, std::size_t n_rows) {
  RandomLp lp;
  for (std::size_t v = 0; v < n_vars; ++v) {
    const double lo = rng.uniform(-2.0, 0.0);
    // A mix of finite and infinite upper bounds.
    const double hi = rng.next_double() < 0.7 ? lo + rng.uniform(0.5, 4.0) : kLpInfinity;
    lp.problem.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<double> dense(n_vars, 0.0);
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t v = 0; v < n_vars; ++v) {
      if (rng.next_double() < 0.6) {
        dense[v] = rng.uniform(-1.5, 1.5);
        terms.emplace_back(v, dense[v]);
      }
    }
    const double pick = rng.next_double();
    // Mostly <= rows with generous rhs keeps a healthy share feasible while
    // still exercising >= and = standardization paths.
    Relation rel = Relation::LessEq;
    double rhs = rng.uniform(0.5, 6.0);
    if (pick < 0.15) {
      rel = Relation::GreaterEq;
      rhs = rng.uniform(-6.0, -0.5);
    } else if (pick < 0.25) {
      rel = Relation::Equal;
      rhs = rng.uniform(-1.0, 1.0);
    }
    lp.rows.push_back(dense);
    lp.rels.push_back(rel);
    lp.rhs.push_back(rhs);
    lp.problem.add_constraint(std::move(terms), rel, rhs);
  }
  return lp;
}

// Complete optimality certificate for a maximization LP with box bounds.
void expect_optimality_certificate(const RandomLp& lp, const LpSolution& sol) {
  const double tol = 1e-6;
  const std::size_t n = lp.problem.num_vars();

  // 1. Primal feasibility.
  EXPECT_LT(lp.problem.max_violation(sol.x), tol);

  // 2. Dual sign feasibility + complementary slackness on rows.
  ASSERT_EQ(sol.duals.size(), lp.rows.size());
  for (std::size_t r = 0; r < lp.rows.size(); ++r) {
    const double activity =
        std::inner_product(lp.rows[r].begin(), lp.rows[r].end(), sol.x.begin(), 0.0);
    const double slack = lp.rhs[r] - activity;
    switch (lp.rels[r]) {
      case Relation::LessEq:
        EXPECT_GT(sol.duals[r], -tol);
        EXPECT_LT(std::fabs(sol.duals[r] * slack), 1e-4);
        break;
      case Relation::GreaterEq:
        EXPECT_LT(sol.duals[r], tol);
        EXPECT_LT(std::fabs(sol.duals[r] * slack), 1e-4);
        break;
      case Relation::Equal:
        break;  // free dual
    }
  }

  // 3. Strong duality: dual objective == primal objective. Reduced costs are
  // priced against whichever bound they push toward.
  double dual_obj = 0.0;
  for (std::size_t r = 0; r < lp.rows.size(); ++r) dual_obj += sol.duals[r] * lp.rhs[r];
  for (std::size_t v = 0; v < n; ++v) {
    double reduced = lp.problem.objective_coeff(v);
    for (std::size_t r = 0; r < lp.rows.size(); ++r) {
      reduced -= sol.duals[r] * lp.rows[r][v];
    }
    if (reduced > tol) {
      ASSERT_TRUE(std::isfinite(lp.problem.upper_bound(v)))
          << "positive reduced cost on an unbounded variable";
      dual_obj += reduced * lp.problem.upper_bound(v);
    } else if (reduced < -tol) {
      dual_obj += reduced * lp.problem.lower_bound(v);
    }
  }
  EXPECT_NEAR(dual_obj, sol.objective, 1e-4 * std::max(1.0, std::fabs(sol.objective)));
}

class LpRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRandomProperty, CertificateHoldsWhenOptimal) {
  util::Rng rng(GetParam());
  const auto n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
  const auto n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
  const RandomLp lp = make_random_lp(rng, n_vars, n_rows);
  const LpSolution sol = solve_lp(lp.problem);
  ASSERT_NE(sol.status, LpStatus::IterLimit);
  if (sol.status == LpStatus::Optimal) {
    expect_optimality_certificate(lp, sol);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomProperty, ::testing::Range<std::uint64_t>(0, 120));

class LpKnapsackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpKnapsackProperty, MatchesGreedyContinuousKnapsack) {
  // max c^T x s.t. w^T x <= B, 0 <= x <= u has the classic greedy optimum:
  // fill variables in decreasing c/w density.
  util::Rng rng(GetParam() + 5000);
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 20));
  std::vector<double> c(n), w(n), u(n);
  LpProblem p;
  std::vector<std::pair<std::size_t, double>> terms;
  for (std::size_t v = 0; v < n; ++v) {
    c[v] = rng.uniform(0.1, 5.0);
    w[v] = rng.uniform(0.1, 3.0);
    u[v] = rng.uniform(0.1, 2.0);
    p.add_variable(0.0, u[v], c[v]);
    terms.emplace_back(v, w[v]);
  }
  const double budget = rng.uniform(0.2, 5.0);
  p.add_constraint(terms, Relation::LessEq, budget);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return c[a] / w[a] > c[b] / w[b]; });
  double remaining = budget, greedy = 0.0;
  for (std::size_t v : order) {
    const double amount = std::min(u[v], remaining / w[v]);
    greedy += c[v] * amount;
    remaining -= w[v] * amount;
    if (remaining <= 0) break;
  }

  const LpSolution sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, greedy, 1e-7 * std::max(1.0, greedy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpKnapsackProperty,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(LpProperty, RelaxingRhsNeverDecreasesObjective) {
  util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n_vars = static_cast<std::size_t>(rng.uniform_int(2, 8));
    RandomLp tight = make_random_lp(rng, n_vars, 4);
    const LpSolution s1 = solve_lp(tight.problem);
    if (s1.status != LpStatus::Optimal) continue;

    // Rebuild with every <= rhs relaxed by +1.
    LpProblem relaxed;
    for (std::size_t v = 0; v < n_vars; ++v) {
      relaxed.add_variable(tight.problem.lower_bound(v), tight.problem.upper_bound(v),
                           tight.problem.objective_coeff(v));
    }
    for (std::size_t r = 0; r < tight.rows.size(); ++r) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t v = 0; v < n_vars; ++v) {
        if (tight.rows[r][v] != 0.0) terms.emplace_back(v, tight.rows[r][v]);
      }
      const double delta = tight.rels[r] == Relation::LessEq ? 1.0 : 0.0;
      relaxed.add_constraint(std::move(terms), tight.rels[r], tight.rhs[r] + delta);
    }
    const LpSolution s2 = solve_lp(relaxed);
    ASSERT_EQ(s2.status, LpStatus::Optimal);
    EXPECT_GE(s2.objective, s1.objective - 1e-7);
  }
}

TEST(LpProperty, ScalingObjectiveScalesOptimum) {
  util::Rng rng(88);
  RandomLp lp = make_random_lp(rng, 6, 4);
  const LpSolution s1 = solve_lp(lp.problem);
  if (s1.status != LpStatus::Optimal) GTEST_SKIP();
  LpProblem scaled;
  for (std::size_t v = 0; v < lp.problem.num_vars(); ++v) {
    scaled.add_variable(lp.problem.lower_bound(v), lp.problem.upper_bound(v),
                        3.0 * lp.problem.objective_coeff(v));
  }
  for (std::size_t r = 0; r < lp.rows.size(); ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t v = 0; v < lp.problem.num_vars(); ++v) {
      if (lp.rows[r][v] != 0.0) terms.emplace_back(v, lp.rows[r][v]);
    }
    scaled.add_constraint(std::move(terms), lp.rels[r], lp.rhs[r]);
  }
  const LpSolution s2 = solve_lp(scaled);
  ASSERT_EQ(s2.status, LpStatus::Optimal);
  EXPECT_NEAR(s2.objective, 3.0 * s1.objective,
              1e-6 * std::max(1.0, std::fabs(s1.objective)));
}

}  // namespace
}  // namespace tapo::solver
