// Differential and stability tests for the persistent LP session.
//
// An LpSession keeps one standardized problem, basis and LU factorization
// resident across solves; callers mutate it through the structure-preserving
// patch API. The contract under test: after ANY sequence of patches, a
// session solve must agree with a fresh build of the identically patched
// problem — the dense tableau as oracle for status/objective, the resident
// problem's own max_violation for primal feasibility — and the stability
// monitor must demote bad column replacements to refactorizations or cold
// fallbacks rather than return drifted answers. See docs/SOLVER.md §7.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "solver/lp.h"
#include "solver/session.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace tapo::solver {
namespace {

// A random LP kept in mutable, rebuildable form so the test can apply every
// patch twice: once to the resident session, once to this model, then
// rebuild a fresh LpProblem from the model as the differential reference.
struct MutableLp {
  std::vector<double> lo, hi, obj;
  std::vector<std::vector<std::pair<std::size_t, double>>> terms;
  std::vector<Relation> rels;
  std::vector<double> rhs;

  LpProblem build() const {
    LpProblem p;
    for (std::size_t v = 0; v < lo.size(); ++v) p.add_variable(lo[v], hi[v], obj[v]);
    for (std::size_t r = 0; r < terms.size(); ++r) {
      p.add_constraint(terms[r], rels[r], rhs[r]);
    }
    return p;
  }
};

MutableLp make_random_lp(util::Rng& rng, std::size_t n_vars, std::size_t n_rows) {
  MutableLp lp;
  for (std::size_t v = 0; v < n_vars; ++v) {
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi =
        rng.next_double() < 0.7 ? lo + rng.uniform(0.5, 4.0) : kLpInfinity;
    lp.lo.push_back(lo);
    lp.hi.push_back(hi);
    lp.obj.push_back(rng.uniform(-2.0, 2.0));
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t v = 0; v < n_vars; ++v) {
      // Each variable appears at most once per row (the patch API requires a
      // unique term); a handful of 0.0 placeholders exercise patching a
      // coefficient "in" from zero.
      const double pick = rng.next_double();
      if (pick < 0.55) {
        terms.emplace_back(v, rng.uniform(-1.5, 1.5));
      } else if (pick < 0.65) {
        terms.emplace_back(v, 0.0);
      }
    }
    const double pick = rng.next_double();
    Relation rel = Relation::LessEq;
    double rhs = rng.uniform(0.5, 6.0);
    if (pick < 0.15) {
      rel = Relation::GreaterEq;
      rhs = rng.uniform(-6.0, -0.5);
    } else if (pick < 0.25) {
      rel = Relation::Equal;
      rhs = rng.uniform(-1.0, 1.0);
    }
    lp.rels.push_back(rel);
    lp.rhs.push_back(rhs);
    lp.terms.push_back(std::move(terms));
  }
  return lp;
}

LpSolution solve_with(const LpProblem& problem, LpEngine engine,
                      const LpBasis* warm = nullptr) {
  LpOptions opt;
  opt.engine = engine;
  opt.warm_start = warm;
  return solve_lp(problem, opt);
}

// Applies one random patch to every listed session and the mutable model
// (several sessions lets a differential drag distinct factor-maintenance
// configurations through the identical patch sequence).
void random_patch(util::Rng& rng, std::vector<LpSession*> sessions,
                  MutableLp& lp) {
  const double pick = rng.next_double();
  if (pick < 0.35 && !lp.rhs.empty()) {
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(lp.rhs.size()) - 1));
    const double rhs = lp.rels[r] == Relation::GreaterEq
                           ? rng.uniform(-6.0, -0.5)
                           : rng.uniform(-1.0, 6.0);
    lp.rhs[r] = rhs;
    for (LpSession* session : sessions) session->patch_rhs(r, rhs);
  } else if (pick < 0.70) {
    // Coefficient patch on an existing (possibly zero-placeholder) term.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(lp.terms.size()) - 1));
      if (lp.terms[r].empty()) continue;
      const auto t = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(lp.terms[r].size()) - 1));
      const double coeff = rng.uniform(-1.5, 1.5);
      lp.terms[r][t].second = coeff;
      for (LpSession* session : sessions) {
        session->patch_coefficient(r, lp.terms[r][t].first, coeff);
      }
      return;
    }
  } else if (pick < 0.85) {
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(lp.lo.size()) - 1));
    const double lo = rng.uniform(-2.0, 0.0);
    const double hi =
        rng.next_double() < 0.7 ? lo + rng.uniform(0.5, 4.0) : kLpInfinity;
    lp.lo[v] = lo;
    lp.hi[v] = hi;
    for (LpSession* session : sessions) session->patch_bound(v, lo, hi);
  } else {
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(lp.obj.size()) - 1));
    const double obj = rng.uniform(-2.0, 2.0);
    lp.obj[v] = obj;
    for (LpSession* session : sessions) session->patch_cost(v, obj);
  }
}

void random_patch(util::Rng& rng, LpSession& session, MutableLp& lp) {
  random_patch(rng, std::vector<LpSession*>{&session}, lp);
}

TEST(LpSession, RandomPatchSequencesMatchFreshSolves) {
  // The core differential: a session dragged through a random patch
  // sequence must, at every step, agree with a from-scratch dense solve of
  // the identically patched problem on status and objective, and its point
  // must be feasible for that problem.
  util::Rng rng(0x9e3779b97f4a7c15ULL);
  std::size_t optimal_count = 0, solves = 0, borderline = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    MutableLp lp = make_random_lp(rng, n_vars, n_rows);
    LpSession session(lp.build(), LpOptions{});
    const int steps = rng.uniform_int(3, 7);
    for (int step = 0; step < steps; ++step) {
      const int patches = rng.uniform_int(1, 4);
      for (int k = 0; k < patches; ++k) random_patch(rng, session, lp);

      const LpSolution got = session.solve();
      ++solves;
      const LpProblem fresh = lp.build();
      const LpSolution dense = solve_with(fresh, LpEngine::Dense);
      const LpSolution revised = solve_with(fresh, LpEngine::Revised);
      if (dense.status != revised.status) {
        // The instance sits on the phase-1 feasibility threshold and the two
        // engines themselves split on it; the session cannot be held to the
        // dense verdict there. Must stay rare.
        ++borderline;
        continue;
      }
      ASSERT_EQ(dense.status, got.status)
          << "trial " << trial << " step " << step
          << ": dense=" << to_string(dense.status)
          << " session=" << to_string(got.status);
      if (dense.status != LpStatus::Optimal) continue;
      ++optimal_count;
      EXPECT_NEAR(dense.objective, got.objective, 1e-7)
          << "trial " << trial << " step " << step;
      EXPECT_LT(fresh.max_violation(got.x), 1e-6)
          << "trial " << trial << " step " << step;
      // The session's resident LpProblem mirrors every patch.
      EXPECT_NEAR(session.problem().objective_value(got.x), got.objective, 1e-7);
    }
  }
  EXPECT_GT(optimal_count, solves / 3);
  EXPECT_LT(borderline, solves / 20);

  // The generator must keep exercising the interesting regime: mostly
  // feasible instances, yet a meaningful infeasible/unbounded share.
  EXPECT_LT(optimal_count, solves);
}

TEST(LpSession, FtAndEtaSessionsAgreeOnRandomPatchSequences) {
  // Two sessions over the same problem, one on the default in-place
  // Forrest–Tomlin updates and one on the legacy product-form eta file,
  // dragged through the identical patch sequence: both must keep matching
  // the dense oracle, and each other, at every step. This is the
  // patch-sequence differential that pins the FT update path (spike
  // capture, row-eta elimination, stability monitor) against the
  // long-standing eta implementation.
  util::Rng rng(0xc2b2ae3d27d4eb4fULL);
  std::size_t optimal_count = 0, solves = 0, borderline = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    MutableLp lp = make_random_lp(rng, n_vars, n_rows);
    LpOptions ft_opt;
    ft_opt.ft_updates = true;
    LpOptions eta_opt;
    eta_opt.ft_updates = false;
    LpSession ft_session(lp.build(), ft_opt);
    LpSession eta_session(lp.build(), eta_opt);
    const int steps = rng.uniform_int(3, 7);
    for (int step = 0; step < steps; ++step) {
      const int patches = rng.uniform_int(1, 4);
      for (int k = 0; k < patches; ++k) {
        random_patch(rng, {&ft_session, &eta_session}, lp);
      }
      const LpSolution ft = ft_session.solve();
      const LpSolution eta = eta_session.solve();
      ++solves;
      const LpProblem fresh = lp.build();
      const LpSolution dense = solve_with(fresh, LpEngine::Dense);
      const LpSolution revised = solve_with(fresh, LpEngine::Revised);
      if (dense.status != revised.status) {
        ++borderline;  // engines themselves split: phase-1 threshold case
        continue;
      }
      ASSERT_EQ(dense.status, ft.status) << "trial " << trial << " step " << step;
      ASSERT_EQ(dense.status, eta.status)
          << "trial " << trial << " step " << step;
      if (dense.status != LpStatus::Optimal) continue;
      ++optimal_count;
      EXPECT_NEAR(dense.objective, ft.objective, 1e-7)
          << "trial " << trial << " step " << step;
      EXPECT_NEAR(ft.objective, eta.objective, 1e-7)
          << "trial " << trial << " step " << step;
      EXPECT_LT(fresh.max_violation(ft.x), 1e-6)
          << "trial " << trial << " step " << step;
      EXPECT_LT(fresh.max_violation(eta.x), 1e-6)
          << "trial " << trial << " step " << step;
    }
  }
  EXPECT_GT(optimal_count, solves / 3);
  EXPECT_LT(borderline, solves / 20);
}

TEST(LpSession, PricingRulesAgreeOnRandomPatchSequences) {
  // Three sessions over the same problem, one per pricing rule, dragged
  // through the identical patch sequence. Devex weights and the partial
  // window cursor survive patches and resident resumes (docs/SOLVER.md §8)
  // — this differential is what pins that carried state: stale weights can
  // only reorder pivots, never change the certified optimum, so all three
  // sessions must keep matching the dense oracle at every step.
  util::Rng rng(0x9e3779b97f4a7c15ULL);
  std::size_t optimal_count = 0, solves = 0, borderline = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_vars = static_cast<std::size_t>(rng.uniform_int(2, 14));
    const std::size_t n_rows = static_cast<std::size_t>(rng.uniform_int(1, 10));
    MutableLp lp = make_random_lp(rng, n_vars, n_rows);
    constexpr LpPricing kRules[] = {LpPricing::Dantzig, LpPricing::Devex,
                                    LpPricing::PartialDevex};
    std::vector<LpSession> sessions;
    sessions.reserve(3);
    for (const LpPricing pricing : kRules) {
      LpOptions opt;
      opt.pricing = pricing;
      sessions.emplace_back(lp.build(), opt);
    }
    const int steps = rng.uniform_int(3, 7);
    for (int step = 0; step < steps; ++step) {
      const int patches = rng.uniform_int(1, 4);
      for (int k = 0; k < patches; ++k) {
        random_patch(rng, {&sessions[0], &sessions[1], &sessions[2]}, lp);
      }
      LpSolution sols[3];
      for (int p = 0; p < 3; ++p) sols[p] = sessions[p].solve();
      ++solves;
      const LpProblem fresh = lp.build();
      const LpSolution dense = solve_with(fresh, LpEngine::Dense);
      const LpSolution revised = solve_with(fresh, LpEngine::Revised);
      if (dense.status != revised.status) {
        ++borderline;  // engines themselves split: phase-1 threshold case
        continue;
      }
      for (int p = 0; p < 3; ++p) {
        ASSERT_EQ(dense.status, sols[p].status)
            << "trial " << trial << " step " << step << " pricing "
            << to_string(kRules[p]);
        if (dense.status != LpStatus::Optimal) continue;
        EXPECT_NEAR(dense.objective, sols[p].objective, 1e-7)
            << "trial " << trial << " step " << step << " pricing "
            << to_string(kRules[p]);
        EXPECT_LT(fresh.max_violation(sols[p].x), 1e-6)
            << "trial " << trial << " step " << step << " pricing "
            << to_string(kRules[p]);
      }
      if (dense.status == LpStatus::Optimal) ++optimal_count;
    }
  }
  EXPECT_GT(optimal_count, solves / 3);
  EXPECT_LT(borderline, solves / 20);
}

TEST(LpSession, UnpatchedResolveIsBitIdentical) {
  util::Rng rng(0x5eed5eed5eed5eedULL);
  std::size_t checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const MutableLp lp = make_random_lp(rng, 8, 5);
    LpSession session(lp.build(), LpOptions{});
    const LpSolution first = session.solve();
    if (!first.optimal()) continue;
    // No patches: the resume must reproduce the previous answer bit for bit
    // (canonical extraction makes the result a function of the basis alone)
    // without any rebuild or fallback.
    const LpSolution again = session.solve();
    ASSERT_TRUE(again.optimal());
    EXPECT_EQ(first.objective, again.objective);
    ASSERT_EQ(first.x.size(), again.x.size());
    for (std::size_t v = 0; v < first.x.size(); ++v) {
      EXPECT_EQ(first.x[v], again.x[v]) << "var " << v;
    }
    EXPECT_EQ(again.iterations, 0u);
    const LpSession::Stats stats = session.stats();
    EXPECT_EQ(stats.solves, 2u);
    EXPECT_GE(stats.resident_resumes, 1u);
    EXPECT_EQ(stats.fallbacks, 0u);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(LpSession, SeedImportMatchesWarmSolveLp) {
  // A seeded session solve is the session form of solve_lp's warm start:
  // same import, same dual repair, same canonical extraction — so on the
  // same problem and seed it must be bit-identical to the one-shot path.
  util::Rng rng(0xabcddcba12344321ULL);
  std::size_t checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const MutableLp lp = make_random_lp(rng, 10, 6);
    const LpProblem fresh = lp.build();
    const LpSolution cold = solve_with(fresh, LpEngine::Revised);
    if (!cold.optimal()) continue;
    const LpSolution warm = solve_with(fresh, LpEngine::Revised, &cold.basis);
    ASSERT_TRUE(warm.optimal());

    LpSession session(lp.build(), LpOptions{});
    const LpSolution seeded = session.solve(&cold.basis);
    ASSERT_TRUE(seeded.optimal());
    EXPECT_EQ(warm.objective, seeded.objective);
    ASSERT_EQ(warm.x.size(), seeded.x.size());
    for (std::size_t v = 0; v < warm.x.size(); ++v) {
      EXPECT_EQ(warm.x[v], seeded.x[v]) << "var " << v;
    }
    EXPECT_EQ(session.stats().seed_imports, 1u);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

// An 8-row instance whose optimal basis is the full set of structural
// variables, so patching one of them rewrites a *basic* column and the
// resume must go through the in-place Forrest–Tomlin column-replacement
// machinery (m/4 + 1 = 3 > 1 dirty column keeps the update path, not the
// rebuild).
LpProblem diagonal_lp(double x1_in_row0) {
  LpProblem lp;
  for (int v = 0; v < 8; ++v) lp.add_variable(0.0, kLpInfinity, 1.0);
  lp.add_constraint({{0, 1.0}, {1, x1_in_row0}}, Relation::LessEq, 1.0);
  for (std::size_t r = 1; r < 8; ++r) {
    lp.add_constraint({{r, 1.0}}, Relation::LessEq, 1.0);
  }
  return lp;
}

TEST(LpSession, PatchedBasicColumnTakesFtUpdate) {
  LpSession session(diagonal_lp(0.0), LpOptions{});
  const LpSolution first = session.solve();
  ASSERT_TRUE(first.optimal());
  EXPECT_DOUBLE_EQ(first.objective, 8.0);

  // Row 0 becomes x0 + 0.5*x1 <= 1 while x1 is basic: exactly one
  // column-replacement update, no refactorization, no fallback.
  session.patch_coefficient(0, 1, 0.5);
  const LpSolution second = session.solve();
  ASSERT_TRUE(second.optimal());
  EXPECT_NEAR(second.objective, 7.5, 1e-9);
  const LpSolution oracle = solve_with(session.problem(), LpEngine::Dense);
  ASSERT_TRUE(oracle.optimal());
  EXPECT_NEAR(oracle.objective, second.objective, 1e-9);

  const LpSession::Stats stats = session.stats();
  EXPECT_GE(stats.ft_updates, 1u);
  EXPECT_EQ(stats.stability_refactorizations, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_GE(stats.resident_resumes, 1u);
}

TEST(LpSession, SingularPatchTriggersStabilityMonitorAndFallsBack) {
  // Rewrite x1's column into an exact copy of x0's (1 in row 0, gone from
  // row 1). The replacement pivot w_r is then zero — the spike check must
  // demote the update to a refactorization, the rebuilt basis is singular,
  // and the session must fall back to a cold solve rather than produce a
  // drifted answer.
  LpSession session(diagonal_lp(0.0), LpOptions{});
  ASSERT_TRUE(session.solve().optimal());

  session.patch_coefficient(0, 1, 1.0);
  session.patch_coefficient(1, 1, 0.0);
  const LpSolution after = session.solve();
  ASSERT_TRUE(after.optimal());
  // max x0+..+x7 with x0 + x1 <= 1 and x2..x7 <= 1 each.
  EXPECT_NEAR(after.objective, 7.0, 1e-9);
  const LpSolution oracle = solve_with(session.problem(), LpEngine::Dense);
  EXPECT_NEAR(oracle.objective, after.objective, 1e-9);

  const LpSession::Stats stats = session.stats();
  EXPECT_GE(stats.stability_refactorizations, 1u);
  EXPECT_GE(stats.fallbacks, 1u);

  // The cold fallback leaves a healthy resident state behind: further
  // patched solves keep matching the oracle.
  session.patch_rhs(0, 2.0);
  const LpSolution resumed = session.solve();
  ASSERT_TRUE(resumed.optimal());
  EXPECT_NEAR(resumed.objective, 8.0, 1e-9);
}

TEST(LpSession, InfeasibleStretchResumesAndRecovers) {
  // Sessions must survive a patched excursion into infeasibility exactly
  // like PR 4's certificate warm-start: the infeasible conclusion keeps the
  // certificate basis resident, and patching back to feasibility resumes
  // from it without a cold restart.
  LpProblem lp;
  lp.add_variable(0.0, kLpInfinity, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  LpSession session(std::move(lp), LpOptions{});

  const LpSolution feasible = session.solve();
  ASSERT_TRUE(feasible.optimal());
  EXPECT_DOUBLE_EQ(feasible.objective, 1.0);

  session.patch_rhs(0, -1.0);  // x0 <= -1 with x0 >= 0: infeasible
  const LpSolution infeasible = session.solve();
  EXPECT_EQ(infeasible.status, LpStatus::Infeasible);
  EXPECT_FALSE(infeasible.basis.empty());  // certificate exported

  session.patch_rhs(0, 2.0);
  const LpSolution back = session.solve();
  ASSERT_TRUE(back.optimal());
  EXPECT_DOUBLE_EQ(back.objective, 2.0);

  const LpSession::Stats stats = session.stats();
  EXPECT_EQ(stats.solves, 3u);
  EXPECT_GE(stats.resident_resumes, 2u);
  EXPECT_EQ(stats.fallbacks, 0u);
}

TEST(LpSession, PatchApiMatchesRebuiltProblem) {
  // LpProblem::patch_* alone (no session): patched problem must be
  // indistinguishable from one built directly with the final data.
  LpProblem patched;
  patched.add_variable(0.0, 1.0, 1.0);
  patched.add_variable(-1.0, kLpInfinity, 0.5);
  patched.add_constraint({{0, 1.0}, {1, 0.0}}, Relation::LessEq, 2.0);
  patched.add_constraint({{1, -1.0}}, Relation::GreaterEq, -3.0);
  patched.patch_coefficient(0, 1, 0.75);
  patched.patch_rhs(0, 1.5);
  patched.patch_bound(1, -0.5, 2.0);
  patched.patch_cost(0, -1.0);

  LpProblem direct;
  direct.add_variable(0.0, 1.0, -1.0);
  direct.add_variable(-0.5, 2.0, 0.5);
  direct.add_constraint({{0, 1.0}, {1, 0.75}}, Relation::LessEq, 1.5);
  direct.add_constraint({{1, -1.0}}, Relation::GreaterEq, -3.0);

  const LpProblem::SparseColumns a = patched.columns();
  const LpProblem::SparseColumns b = direct.columns();
  EXPECT_EQ(a.starts, b.starts);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.values, b.values);
  for (std::size_t v = 0; v < 2; ++v) {
    EXPECT_EQ(patched.lower_bound(v), direct.lower_bound(v));
    EXPECT_EQ(patched.upper_bound(v), direct.upper_bound(v));
    EXPECT_EQ(patched.objective_coeff(v), direct.objective_coeff(v));
  }
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(patched.rhs(r), direct.rhs(r));
    EXPECT_EQ(patched.relation(r), direct.relation(r));
  }
  const LpSolution pa = solve_with(patched, LpEngine::Dense);
  const LpSolution pb = solve_with(direct, LpEngine::Dense);
  ASSERT_EQ(pa.status, pb.status);
  EXPECT_EQ(pa.objective, pb.objective);
}

TEST(LpSession, TelemetryCatalogsSessionActivity) {
  util::telemetry::Registry reg;
  LpOptions opt;
  opt.telemetry = &reg;
  LpSession session(diagonal_lp(0.0), opt);
  ASSERT_TRUE(session.solve().optimal());
  session.patch_coefficient(0, 1, 0.5);
  session.patch_rhs(0, 1.25);
  ASSERT_TRUE(session.solve().optimal());

  EXPECT_EQ(reg.timer_stats("lp.session.build").count, 1u);
  EXPECT_EQ(reg.timer_stats("lp.session.solve").count, 2u);
  EXPECT_EQ(reg.counter_value("lp.session.solves"), 2u);
  EXPECT_EQ(reg.counter_value("lp.session.patches"), 2u);
  EXPECT_EQ(reg.counter_value("lp.session.resident_resumes"),
            session.stats().resident_resumes);
  EXPECT_EQ(reg.counter_value("lp.session.ft_updates"),
            session.stats().ft_updates);
  EXPECT_EQ(reg.counter_value("lp.session.ft_budget_exhausted"),
            session.stats().ft_budget_exhausted);
  // Sessions feed the same lp.* rollups as one-shot solves.
  EXPECT_EQ(reg.counter_value("lp.solves"), 2u);
  // Standardization/factorization phase timers fire inside the session.
  EXPECT_GE(reg.timer_stats("lp.phase.standardize").count, 1u);
  EXPECT_GE(reg.timer_stats("lp.phase.factorize").count, 1u);
}

}  // namespace
}  // namespace tapo::solver
