#include "solver/lu.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tapo::solver {
namespace {

TEST(Lu, Solves2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(std::vector<double>{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  LuFactorization lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_EQ(lu.determinant(), 0.0);
}

TEST(Lu, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1;
  a(1, 0) = 2; a(1, 1) = 4;
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  util::Rng rng(31);
  Matrix a(5, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 5.0;  // diagonally dominant -> well conditioned
  }
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  const Matrix prod = a.multiply(lu.inverse());
  Matrix err = prod;
  err.add_scaled(Matrix::identity(5), -1.0);
  EXPECT_LT(err.max_abs(), 1e-10);
}

class LuRandomSolve : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandomSolve, ResidualIsTiny) {
  const std::size_t n = GetParam();
  util::Rng rng(1000 + n);
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t r = 0; r < n; ++r) {
    x_true[r] = rng.uniform(-2.0, 2.0);
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);
  }
  const auto b = a.multiply(x_true);
  LuFactorization lu(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSolve,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 150));

TEST(Lu, MatrixRhsSolve) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 0;
  a(1, 0) = 0; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 2; b(0, 1) = 4;
  b(1, 0) = 8; b(1, 1) = 12;
  LuFactorization lu(a);
  const Matrix x = lu.solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

}  // namespace
}  // namespace tapo::solver
