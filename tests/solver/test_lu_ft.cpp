// Unit tests for the Forrest–Tomlin updatable factorization (solver/lu.h).
//
// The contract under test: after any sequence of accepted replace_column()
// updates, ftran/btran must solve with the *explicitly updated* matrix — a
// fresh LuFactorization of that matrix is the oracle — and at zero updates
// the wrapper must be bitwise identical to the wrapped factorization. The
// stability monitor must reject singular and tolerance-failing spikes with
// kUnstable instead of returning drifted factors.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "solver/lu.h"
#include "solver/matrix.h"
#include "util/rng.h"

namespace tapo::solver {
namespace {

Matrix random_basis(util::Rng& rng, std::size_t m, double dominance) {
  Matrix b(m, m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
    b(r, r) += dominance;  // well conditioned
  }
  return b;
}

// Replaces column `pos` of the tracked matrix through the FTRAN spike
// protocol (solve the entering column, capture the spike, update), mirroring
// the write into `b` only when the update is accepted.
FtFactorization::Update replace(FtFactorization& ft, Matrix& b,
                                std::size_t pos,
                                const std::vector<double>& column,
                                double tolerance = 1e-9) {
  std::vector<double> v = column;
  std::vector<double> spike;
  ft.ftran(v, &spike);
  const auto result = ft.replace_column(pos, spike, tolerance);
  if (result == FtFactorization::Update::kOk) {
    for (std::size_t r = 0; r < b.rows(); ++r) b(r, pos) = column[r];
  }
  return result;
}

void expect_solves_match_fresh(const FtFactorization& ft, const Matrix& b,
                               util::Rng& rng, double tol) {
  const std::size_t m = b.rows();
  const LuFactorization fresh(b);
  ASSERT_TRUE(fresh.ok());
  std::vector<double> rhs(m);
  for (auto& v : rhs) v = rng.uniform(-2.0, 2.0);
  std::vector<double> ft_x = rhs, lu_x = rhs;
  ft.ftran(ft_x);
  fresh.solve_in_place(lu_x);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(ft_x[i], lu_x[i], tol) << i;
  std::vector<double> ft_y = rhs, lu_y = rhs;
  ft.btran(ft_y);
  fresh.solve_transposed_in_place(lu_y);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(ft_y[i], lu_y[i], tol) << i;
}

TEST(FtFactorization, ZeroUpdatesAreBitwiseIdenticalToBaseLu) {
  util::Rng rng(71);
  const Matrix b = random_basis(rng, 12, 6.0);
  const FtFactorization ft(b);
  const LuFactorization lu(b);
  ASSERT_TRUE(ft.ok());
  EXPECT_EQ(ft.updates(), 0u);
  std::vector<double> rhs(12);
  for (auto& v : rhs) v = rng.uniform(-3.0, 3.0);
  std::vector<double> ft_x = rhs, lu_x = rhs;
  ft.ftran(ft_x);
  lu.solve_in_place(lu_x);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(ft_x[i], lu_x[i]) << i;
  std::vector<double> ft_y = rhs, lu_y = rhs;
  ft.btran(ft_y);
  lu.solve_transposed_in_place(lu_y);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(ft_y[i], lu_y[i]) << i;
}

TEST(FtFactorization, SingleReplacementMatchesFreshFactorization) {
  util::Rng rng(72);
  Matrix b = random_basis(rng, 10, 5.0);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  std::vector<double> column(10);
  for (auto& v : column) v = rng.uniform(-2.0, 2.0);
  column[3] += 10.0;  // keep the updated matrix well conditioned
  ASSERT_EQ(replace(ft, b, 3, column), FtFactorization::Update::kOk);
  EXPECT_EQ(ft.updates(), 1u);
  expect_solves_match_fresh(ft, b, rng, 1e-9);
}

TEST(FtFactorization, SequentialReplacementsTrackExplicitMatrix) {
  util::Rng rng(73);
  const std::size_t m = 20;
  Matrix b = random_basis(rng, m, 8.0);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  std::size_t accepted = 0;
  for (int step = 0; step < 40; ++step) {
    const auto pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(m) - 1));
    std::vector<double> column(m);
    for (auto& v : column) v = rng.uniform(-1.0, 1.0);
    column[pos] += 8.0;
    if (replace(ft, b, pos, column) == FtFactorization::Update::kOk) {
      ++accepted;
      expect_solves_match_fresh(ft, b, rng, 1e-7);
    }
  }
  // Diagonally boosted replacement columns keep every update stable.
  EXPECT_EQ(accepted, 40u);
  EXPECT_EQ(ft.updates(), 40u);
}

TEST(FtFactorization, SlackHeavyBasisTakesDenseSpikes) {
  // The simplex regime: a mostly-identity (slack) basis receiving fully
  // dense thermal columns.
  util::Rng rng(74);
  const std::size_t m = 9;
  Matrix b = Matrix::identity(m);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  for (const std::size_t pos : {std::size_t{2}, std::size_t{5}, std::size_t{7}}) {
    std::vector<double> column(m);
    for (auto& v : column) v = rng.uniform(0.1, 1.0);
    column[pos] += 4.0;
    ASSERT_EQ(replace(ft, b, pos, column), FtFactorization::Update::kOk);
  }
  expect_solves_match_fresh(ft, b, rng, 1e-10);
}

TEST(FtFactorization, RepeatedSamePositionReplacements) {
  // Re-replacing the column that was already replaced exercises the cyclic
  // pair shift when the pair is already last, and stale-zero list entries.
  util::Rng rng(75);
  Matrix b = random_basis(rng, 8, 5.0);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  for (int step = 0; step < 5; ++step) {
    std::vector<double> column(8);
    for (auto& v : column) v = rng.uniform(-2.0, 2.0);
    column[4] += 6.0;
    ASSERT_EQ(replace(ft, b, 4, column), FtFactorization::Update::kOk) << step;
    expect_solves_match_fresh(ft, b, rng, 1e-9);
  }
}

TEST(FtFactorization, SingularSpikeIsRejected) {
  // Column 2 of the identity replaced by a copy of column 0: the emerging
  // diagonal is exactly zero, the update must report kUnstable and not count.
  Matrix b = Matrix::identity(5);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  std::vector<double> duplicate(5, 0.0);
  duplicate[0] = 1.0;
  EXPECT_EQ(replace(ft, b, 2, duplicate), FtFactorization::Update::kUnstable);
  EXPECT_EQ(ft.updates(), 0u);
}

TEST(FtFactorization, IllConditionedSpikeFailsTheTolerance) {
  // Nearly parallel to column 0: the emerging diagonal is ~1e-9 against a
  // spike of magnitude 1, far below a 1e-6 relative pivot tolerance.
  Matrix b = Matrix::identity(4);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  std::vector<double> nearly(4, 0.0);
  nearly[0] = 1.0;
  nearly[3] = 1e-9;
  EXPECT_EQ(replace(ft, b, 3, nearly, 1e-6),
            FtFactorization::Update::kUnstable);
  // The same spike passes a tolerance below the diagonal's relative size —
  // the monitor is a threshold, not a hard-coded rejection.
  FtFactorization loose(Matrix::identity(4));
  Matrix b2 = Matrix::identity(4);
  EXPECT_EQ(replace(loose, b2, 3, nearly, 1e-12),
            FtFactorization::Update::kOk);
}

TEST(FtFactorization, FillMonitorTripsAfterDenseUpdates) {
  // An identity basis stores no off-diagonal entries, so a handful of dense
  // spikes must push the stored-entry count past a fill factor of 1x the
  // m-entry floor, while a generous factor stays clear.
  util::Rng rng(76);
  const std::size_t m = 8;
  Matrix b = Matrix::identity(m);
  FtFactorization ft(b);
  ASSERT_TRUE(ft.ok());
  EXPECT_FALSE(ft.fill_exceeded(1.0));
  for (const std::size_t pos :
       {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
    std::vector<double> column(m);
    for (auto& v : column) v = rng.uniform(0.2, 1.0);
    column[pos] += 5.0;
    ASSERT_EQ(replace(ft, b, pos, column), FtFactorization::Update::kOk);
  }
  EXPECT_TRUE(ft.fill_exceeded(1.0));
  EXPECT_FALSE(ft.fill_exceeded(100.0));
}

TEST(FtFactorization, SingularBasisReportsNotOk) {
  Matrix b(3, 3);
  b(0, 0) = 1.0;
  b(1, 0) = 2.0;  // rank deficient
  const FtFactorization ft(b);
  EXPECT_FALSE(ft.ok());
}

}  // namespace
}  // namespace tapo::solver
