#include "solver/matrix.h"

#include <gtest/gtest.h>

namespace tapo::solver {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, MatrixMultiply) {
  Matrix a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Matrix a(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = static_cast<double>(r * 3 + c);
  const Matrix p = a.multiply(Matrix::identity(3));
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(p(r, c), a(r, c));
}

TEST(Matrix, VectorMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 0; a(0, 2) = 2;
  a(1, 0) = 0; a(1, 1) = 3; a(1, 2) = -1;
  const std::vector<double> v{1.0, 2.0, 3.0};
  const auto out = a.multiply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(Matrix, AddScaled) {
  Matrix a(1, 2, 1.0), b(1, 2, 2.0);
  a.add_scaled(b, -0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Matrix, Block) {
  Matrix m(3, 3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = static_cast<double>(r * 3 + c);
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m(2, 2);
  m(0, 1) = -7.5;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.5);
}

TEST(VectorOps, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
}

TEST(VectorOps, Dot) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, -5.0, 6.0}), 12.0);
}

}  // namespace
}  // namespace tapo::solver
