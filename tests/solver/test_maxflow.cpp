#include "solver/maxflow.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/rng.h"

namespace tapo::solver {
namespace {

TEST(MaxFlow, SimplePath) {
  MaxFlow mf(3);
  mf.add_edge(0, 1, 5.0);
  mf.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 2), 3.0);
}

TEST(MaxFlow, ParallelPaths) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 2.0);
  mf.add_edge(1, 3, 2.0);
  mf.add_edge(0, 2, 3.0);
  mf.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 3.0);
}

TEST(MaxFlow, ClassicDiamondWithCrossEdge) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 10.0);
  mf.add_edge(0, 2, 10.0);
  mf.add_edge(1, 2, 1.0);
  mf.add_edge(1, 3, 5.0);
  mf.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 15.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.add_edge(0, 1, 5.0);
  mf.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(mf.solve(0, 3), 0.0);
}

TEST(MaxFlow, FlowOnEdgeReported) {
  MaxFlow mf(3);
  const auto e1 = mf.add_edge(0, 1, 5.0);
  const auto e2 = mf.add_edge(1, 2, 3.0);
  mf.solve(0, 2);
  EXPECT_DOUBLE_EQ(mf.flow_on(e1), 3.0);
  EXPECT_DOUBLE_EQ(mf.flow_on(e2), 3.0);
  EXPECT_DOUBLE_EQ(mf.capacity_of(e1), 5.0);
}

TEST(MaxFlow, MinCutValueOnBipartite) {
  // 3 sources with caps {1,2,3} into 2 sinks with caps {2,2}: max flow 4.
  MaxFlow mf(7);  // s=0, sources 1-3, sinks 4-5, t=6
  const double source_cap[3] = {1, 2, 3};
  const double sink_cap[2] = {2, 2};
  for (int i = 0; i < 3; ++i) mf.add_edge(0, 1 + i, source_cap[i]);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) mf.add_edge(1 + i, 4 + j, 100.0);
  for (int j = 0; j < 2; ++j) mf.add_edge(4 + j, 6, sink_cap[j]);
  EXPECT_DOUBLE_EQ(mf.solve(0, 6), 4.0);
}

TEST(Circulation, SimpleCycleWithLowerBounds) {
  // Triangle where one arc forces at least 2 units around the cycle.
  Circulation c(3);
  const auto a0 = c.add_arc(0, 1, 2.0, 5.0);
  const auto a1 = c.add_arc(1, 2, 0.0, 5.0);
  const auto a2 = c.add_arc(2, 0, 0.0, 5.0);
  const auto flows = c.solve();
  ASSERT_TRUE(flows.has_value());
  EXPECT_GE((*flows)[a0], 2.0);
  // Conservation: all three arcs carry the same flow.
  EXPECT_NEAR((*flows)[a0], (*flows)[a1], 1e-9);
  EXPECT_NEAR((*flows)[a1], (*flows)[a2], 1e-9);
}

TEST(Circulation, InfeasibleWhenLowerBoundExceedsDownstreamCapacity) {
  Circulation c(3);
  c.add_arc(0, 1, 4.0, 5.0);
  c.add_arc(1, 2, 0.0, 2.0);  // cannot forward 4 units
  c.add_arc(2, 0, 0.0, 5.0);
  EXPECT_FALSE(c.solve().has_value());
}

TEST(Circulation, EmptyNetworkIsFeasible) {
  Circulation c(4);
  const auto flows = c.solve();
  ASSERT_TRUE(flows.has_value());
  EXPECT_TRUE(flows->empty());
}

TEST(Circulation, TightBoundsForceExactFlow) {
  Circulation c(2);
  const auto a = c.add_arc(0, 1, 3.0, 3.0);
  const auto b = c.add_arc(1, 0, 3.0, 3.0);
  const auto flows = c.solve();
  ASSERT_TRUE(flows.has_value());
  EXPECT_DOUBLE_EQ((*flows)[a], 3.0);
  EXPECT_DOUBLE_EQ((*flows)[b], 3.0);
}

class CirculationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CirculationProperty, SolutionsSatisfyBoundsAndConservation) {
  util::Rng rng(GetParam() + 900);
  const auto n = static_cast<std::size_t>(rng.uniform_int(3, 10));
  Circulation c(n);
  struct ArcInfo {
    std::size_t from, to;
    double lo, hi;
  };
  std::vector<ArcInfo> arcs;
  // A ring guarantees strong connectivity; random chords add complexity.
  for (std::size_t v = 0; v < n; ++v) {
    arcs.push_back({v, (v + 1) % n, 0.0, rng.uniform(2.0, 8.0)});
  }
  const auto extra = static_cast<std::size_t>(rng.uniform_int(0, 12));
  for (std::size_t e = 0; e < extra; ++e) {
    const auto u = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto v = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (u == v) continue;
    const double lo = rng.uniform(0.0, 0.8);
    arcs.push_back({u, v, lo, lo + rng.uniform(0.5, 4.0)});
  }
  for (const auto& a : arcs) c.add_arc(a.from, a.to, a.lo, a.hi);
  const auto flows = c.solve();
  if (!flows) return;  // infeasible instances are legitimate

  std::vector<double> net(n, 0.0);
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    EXPECT_GE((*flows)[i], arcs[i].lo - 1e-9);
    EXPECT_LE((*flows)[i], arcs[i].hi + 1e-9);
    net[arcs[i].from] -= (*flows)[i];
    net[arcs[i].to] += (*flows)[i];
  }
  for (double x : net) EXPECT_NEAR(x, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CirculationProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace tapo::solver
