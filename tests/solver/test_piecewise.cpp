#include "solver/piecewise.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace tapo::solver {
namespace {

PiecewiseLinear fig3_function() {
  // The paper's worked example (Fig. 3): P-state powers 0/.05/.1/.15 W with
  // reward rates 0/.5/.9/1.2.
  return PiecewiseLinear({{0.0, 0.0}, {0.05, 0.5}, {0.1, 0.9}, {0.15, 1.2}});
}

TEST(Piecewise, EvaluatesAtBreakpoints) {
  const auto f = fig3_function();
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(0.05), 0.5);
  EXPECT_DOUBLE_EQ(f.value(0.1), 0.9);
  EXPECT_DOUBLE_EQ(f.value(0.15), 1.2);
}

TEST(Piecewise, InterpolatesBetweenBreakpoints) {
  const auto f = fig3_function();
  EXPECT_NEAR(f.value(0.025), 0.25, 1e-12);
  EXPECT_NEAR(f.value(0.125), 1.05, 1e-12);
}

TEST(Piecewise, ClampsOutsideDomain) {
  const auto f = fig3_function();
  EXPECT_DOUBLE_EQ(f.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 1.2);
}

TEST(Piecewise, SortsUnorderedInput) {
  const PiecewiseLinear f({{1.0, 2.0}, {0.0, 0.0}, {0.5, 1.5}});
  EXPECT_DOUBLE_EQ(f.x_min(), 0.0);
  EXPECT_DOUBLE_EQ(f.x_max(), 1.0);
  EXPECT_DOUBLE_EQ(f.value(0.5), 1.5);
}

TEST(Piecewise, DuplicateXKeepsUpperEnvelope) {
  const PiecewiseLinear f({{0.0, 0.0}, {1.0, 1.0}, {1.0, 3.0}});
  EXPECT_EQ(f.points().size(), 2u);
  EXPECT_DOUBLE_EQ(f.value(1.0), 3.0);
}

TEST(Piecewise, Slopes) {
  const auto s = fig3_function().slopes();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 10.0, 1e-9);
  EXPECT_NEAR(s[1], 8.0, 1e-9);
  EXPECT_NEAR(s[2], 6.0, 1e-9);
}

TEST(Piecewise, ConcavityDetection) {
  EXPECT_TRUE(fig3_function().is_concave());
  // Fig. 4 shape: the 0.05 W point drops to zero reward (deadline miss).
  const PiecewiseLinear fig4({{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.9}, {0.15, 1.2}});
  EXPECT_FALSE(fig4.is_concave());
}

TEST(Piecewise, Monotonicity) {
  EXPECT_TRUE(fig3_function().is_nondecreasing());
  const PiecewiseLinear down({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_FALSE(down.is_nondecreasing());
}

TEST(Piecewise, UpperConcaveHullRemovesBadPState) {
  // The paper's Fig. 5: ignoring the "bad" P-state at 0.05 W leaves the hull
  // through (0,0), (0.1,0.9), (0.15,1.2).
  const PiecewiseLinear fig4({{0.0, 0.0}, {0.05, 0.0}, {0.1, 0.9}, {0.15, 1.2}});
  const PiecewiseLinear hull = fig4.upper_concave_hull();
  ASSERT_EQ(hull.points().size(), 3u);
  EXPECT_DOUBLE_EQ(hull.points()[1].x, 0.1);
  EXPECT_DOUBLE_EQ(hull.points()[1].y, 0.9);
  EXPECT_TRUE(hull.is_concave());
  EXPECT_NEAR(hull.value(0.05), 0.45, 1e-12);  // paper: 2-core example value
}

TEST(Piecewise, HullOfConcaveFunctionIsIdentity) {
  const auto f = fig3_function();
  const auto hull = f.upper_concave_hull();
  ASSERT_EQ(hull.points().size(), f.points().size());
  for (std::size_t i = 0; i < f.points().size(); ++i) {
    EXPECT_DOUBLE_EQ(hull.points()[i].y, f.points()[i].y);
  }
}

class HullProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HullProperty, HullDominatesAndIsConcave) {
  util::Rng rng(GetParam());
  std::vector<Point> pts;
  const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({x, rng.uniform(0.0, 5.0)});
    x += rng.uniform(0.1, 1.0);
  }
  const PiecewiseLinear f(pts);
  const PiecewiseLinear hull = f.upper_concave_hull();
  EXPECT_TRUE(hull.is_concave(1e-7));
  for (const Point& p : f.points()) {
    EXPECT_GE(hull.value(p.x), p.y - 1e-9);  // hull dominates
  }
  // Hull breakpoints are a subset of the original points (no new heights).
  for (const Point& p : hull.points()) {
    bool found = false;
    for (const Point& q : f.points()) {
      if (std::abs(p.x - q.x) < 1e-12 && std::abs(p.y - q.y) < 1e-12) found = true;
    }
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullProperty, ::testing::Range<std::uint64_t>(0, 40));

TEST(Piecewise, AverageOfFunctions) {
  const PiecewiseLinear a({{0.0, 0.0}, {1.0, 2.0}});
  const PiecewiseLinear b({{0.0, 1.0}, {0.5, 1.0}, {1.0, 1.0}});
  const PiecewiseLinear avg = PiecewiseLinear::average({a, b});
  EXPECT_NEAR(avg.value(0.0), 0.5, 1e-12);
  EXPECT_NEAR(avg.value(0.5), 1.0, 1e-12);
  EXPECT_NEAR(avg.value(1.0), 1.5, 1e-12);
}

TEST(Piecewise, AverageKeepsAllBreakpoints) {
  const PiecewiseLinear a({{0.0, 0.0}, {0.3, 1.0}, {1.0, 1.0}});
  const PiecewiseLinear b({{0.0, 0.0}, {0.7, 0.0}, {1.0, 2.0}});
  const PiecewiseLinear avg = PiecewiseLinear::average({a, b});
  EXPECT_EQ(avg.points().size(), 4u);  // union of {0, .3, .7, 1}
  EXPECT_NEAR(avg.value(0.3), 0.5, 1e-12);
}

TEST(Piecewise, ScaleCopies) {
  // n * f(x/n): two cores sharing 0.2 W earn twice f(0.1).
  const auto f = fig3_function();
  const auto two = f.scale_copies(2);
  EXPECT_NEAR(two.value(0.2), 2.0 * f.value(0.1), 1e-12);
  EXPECT_DOUBLE_EQ(two.x_max(), 0.3);
  EXPECT_TRUE(two.is_concave());
}

TEST(Piecewise, ScaleCopiesIdentityForOne) {
  const auto f = fig3_function();
  const auto one = f.scale_copies(1);
  EXPECT_EQ(one.points().size(), f.points().size());
  EXPECT_DOUBLE_EQ(one.value(0.07), f.value(0.07));
}

}  // namespace
}  // namespace tapo::solver
