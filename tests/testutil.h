// Shared helpers for building small, fully-valid data centers in tests.
#pragma once

#include <vector>

#include "dc/datacenter.h"
#include "scenario/generator.h"
#include "solver/matrix.h"

namespace tapo::test {

// A proportional-mixing cross-interference matrix: every outlet distributes
// to inlets proportionally to their flow. Satisfies the Appendix-B row-sum
// and flow-balance constraints exactly (though not the Table-II EC/RC
// ranges), which suffices for heat-flow tests.
inline solver::Matrix proportional_alpha(const dc::DataCenter& dc) {
  const std::size_t n = dc.num_entities();
  double total = 0.0;
  for (std::size_t e = 0; e < n; ++e) total += dc.entity_flow(e);
  solver::Matrix alpha(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      alpha(i, j) = dc.entity_flow(j) / total;
    }
  }
  return alpha;
}

// A tiny data center (node types from Table I) with proportional mixing.
// node_type_of[j] selects the type of node j.
inline dc::DataCenter make_tiny_dc(const std::vector<std::size_t>& node_type_of,
                                   std::size_t num_cracs,
                                   double static_fraction = 0.3) {
  dc::DataCenter out;
  out.node_types = dc::table1_node_types(static_fraction);
  for (std::size_t t : node_type_of) out.nodes.push_back({t});
  out.layout = dc::make_hot_cold_aisle_layout(node_type_of.size(), num_cracs);
  double node_flow = 0.0;
  for (std::size_t j = 0; j < node_type_of.size(); ++j) {
    node_flow += out.node_types[node_type_of[j]].airflow_m3s();
  }
  dc::CracSpec crac;
  crac.flow_m3s = node_flow / static_cast<double>(num_cracs);
  out.cracs.assign(num_cracs, crac);
  out.finalize();
  out.alpha = proportional_alpha(out);
  return out;
}

// A full scenario at reduced size; aborts the test on generation failure.
inline scenario::Scenario make_small_scenario(std::uint64_t seed,
                                              std::size_t num_nodes = 10,
                                              std::size_t num_cracs = 2) {
  scenario::ScenarioConfig config;
  config.num_nodes = num_nodes;
  config.num_cracs = num_cracs;
  config.seed = seed;
  auto result = scenario::generate_scenario(config);
  if (!result.has_value()) {
    throw std::runtime_error("scenario generation failed in test helper");
  }
  return std::move(*result);
}

}  // namespace tapo::test
