#include "thermal/bounds.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace tapo::thermal {
namespace {

using test::make_tiny_dc;

TEST(PowerBounds, PmaxExceedsPmin) {
  const auto dc = make_tiny_dc({0, 1, 0, 1}, 2);
  const HeatFlowModel model(dc);
  const PowerBounds bounds = compute_power_bounds(dc, model);
  ASSERT_TRUE(bounds.feasible);
  EXPECT_GT(bounds.pmax_kw, bounds.pmin_kw);
}

TEST(PowerBounds, PminCoversBasePower) {
  // Even all-off, total power includes every node's base power plus the CRAC
  // power to remove it.
  const auto dc = make_tiny_dc({0, 0, 1}, 1);
  const HeatFlowModel model(dc);
  const PowerBounds bounds = compute_power_bounds(dc, model);
  ASSERT_TRUE(bounds.feasible);
  EXPECT_GT(bounds.pmin_kw, dc.total_base_power_kw());
}

TEST(PowerBounds, PmaxCoversMaxComputePower) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  const PowerBounds bounds = compute_power_bounds(dc, model);
  ASSERT_TRUE(bounds.feasible);
  EXPECT_GT(bounds.pmax_kw, dc.max_compute_power_kw());
}

TEST(PowerBounds, SetpointsRespectRedlinesAtFullLoad) {
  const auto dc = make_tiny_dc({0, 0, 1, 1, 0}, 2);
  const HeatFlowModel model(dc);
  const PowerBounds bounds = compute_power_bounds(dc, model);
  ASSERT_TRUE(bounds.feasible);
  std::vector<double> all_on(dc.num_nodes());
  for (std::size_t j = 0; j < dc.num_nodes(); ++j) {
    all_on[j] = dc.node_type(j).max_node_power_kw();
  }
  EXPECT_TRUE(model.within_redlines(model.solve(bounds.crac_out_at_max, all_on)));
}

TEST(PowerBounds, MinimizerPrefersWarmSetpointsAtIdle) {
  // At idle the CoP effect dominates: higher setpoints are cheaper, so the
  // optimizer should not sit at the coldest allowed temperature.
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  PowerBoundsOptions options;
  const PowerBounds bounds = compute_power_bounds(dc, model, options);
  ASSERT_TRUE(bounds.feasible);
  EXPECT_GT(bounds.crac_out_at_min[0], options.tcrac_min_c + 1.0);
}

TEST(PowerBounds, PconstMidpoint) {
  PowerBounds bounds;
  bounds.feasible = true;
  bounds.pmin_kw = 10.0;
  bounds.pmax_kw = 30.0;
  EXPECT_DOUBLE_EQ(pconst_from_bounds(bounds), 20.0);
  EXPECT_DOUBLE_EQ(pconst_from_bounds(bounds, 0.25), 15.0);
  EXPECT_DOUBLE_EQ(pconst_from_bounds(bounds, 1.0), 30.0);
}

TEST(FixedLoadPower, MonotoneInLoad) {
  const auto dc = make_tiny_dc({0, 1, 0}, 1);
  const HeatFlowModel model(dc);
  const auto low =
      minimize_total_power(dc, model, {0.4, 0.45, 0.4});
  const auto high =
      minimize_total_power(dc, model, {0.7, 0.85, 0.7});
  ASSERT_TRUE(low.feasible && high.feasible);
  EXPECT_GT(high.total_kw, low.total_kw);
}

TEST(FixedLoadPower, InfeasibleWhenRedlineUnreachable) {
  auto dc = make_tiny_dc({0, 0}, 1);
  dc.redline_node_c = 5.0;  // below any reachable setpoint
  const HeatFlowModel model(dc);
  const auto result = minimize_total_power(dc, model, {0.5, 0.5});
  EXPECT_FALSE(result.feasible);
}

TEST(FixedLoadPower, TotalIncludesCracShare) {
  const auto dc = make_tiny_dc({0}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> load{0.6};
  const auto result = minimize_total_power(dc, model, load);
  ASSERT_TRUE(result.feasible);
  const auto temps = model.solve(result.crac_out, load);
  EXPECT_NEAR(result.total_kw, 0.6 + model.total_crac_power_kw(temps), 1e-9);
}

}  // namespace
}  // namespace tapo::thermal
