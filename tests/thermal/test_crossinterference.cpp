#include "thermal/crossinterference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dc/layout.h"
#include "thermal/heatflow.h"
#include "testutil.h"

namespace tapo::thermal {
namespace {

std::vector<double> uniform_flows(const dc::Layout& layout, double node_flow) {
  const double crac_flow = node_flow * static_cast<double>(layout.nodes.size()) /
                           static_cast<double>(layout.num_cracs);
  std::vector<double> flows(layout.num_cracs, crac_flow);
  flows.insert(flows.end(), layout.nodes.size(), node_flow);
  return flows;
}

TEST(Table2, RangesMatchPaper) {
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::A).ec_min, 0.30);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::A).ec_max, 0.40);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::A).rc_min, 0.00);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::A).rc_max, 0.10);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::B).rc_max, 0.20);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::C).ec_min, 0.40);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::D).ec_max, 0.80);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::D).rc_min, 0.30);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::E).ec_max, 0.90);
  EXPECT_DOUBLE_EQ(table2_range(dc::RackLabel::E).rc_max, 0.80);
}

TEST(Table2, MonotoneWithHeight) {
  // Higher rack positions recirculate and exit more.
  double prev_ec = 0.0, prev_rc = -1.0;
  for (auto label : {dc::RackLabel::A, dc::RackLabel::B, dc::RackLabel::C,
                     dc::RackLabel::D, dc::RackLabel::E}) {
    const auto r = table2_range(label);
    EXPECT_GE(r.ec_min, prev_ec - 1e-12);
    EXPECT_GE(r.rc_max, prev_rc);
    prev_ec = r.ec_min;
    prev_rc = r.rc_max;
  }
}

class CrossInterferenceGen : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossInterferenceGen, SatisfiesAllAppendixBConstraints) {
  const auto layout = dc::make_hot_cold_aisle_layout(25, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(GetParam());
  const auto alpha = generate_cross_interference(layout, flows, rng);
  ASSERT_TRUE(alpha.has_value());
  const auto check = verify_cross_interference(*alpha, layout, flows);
  EXPECT_TRUE(check.ok) << "row-sum err " << check.max_outflow_error
                        << " balance err " << check.max_flow_balance_error
                        << " ec " << check.max_ec_violation << " rc "
                        << check.max_rc_violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossInterferenceGen,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(CrossInterference, PaperScale150Nodes3Cracs) {
  const auto layout = dc::make_hot_cold_aisle_layout(150, 3);
  const auto flows = uniform_flows(layout, 0.075);
  util::Rng rng(42);
  const auto alpha = generate_cross_interference(layout, flows, rng);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_TRUE(verify_cross_interference(*alpha, layout, flows).ok);
}

TEST(CrossInterference, DifferentSeedsGiveDifferentMatrices) {
  const auto layout = dc::make_hot_cold_aisle_layout(15, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng r1(1), r2(2);
  const auto a1 = generate_cross_interference(layout, flows, r1);
  const auto a2 = generate_cross_interference(layout, flows, r2);
  ASSERT_TRUE(a1 && a2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a1->rows(); ++i) {
    for (std::size_t j = 0; j < a1->cols(); ++j) {
      diff = std::max(diff, std::fabs((*a1)(i, j) - (*a2)(i, j)));
    }
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(CrossInterference, SameSeedReproduces) {
  const auto layout = dc::make_hot_cold_aisle_layout(15, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng r1(9), r2(9);
  const auto a1 = generate_cross_interference(layout, flows, r1);
  const auto a2 = generate_cross_interference(layout, flows, r2);
  ASSERT_TRUE(a1 && a2);
  for (std::size_t i = 0; i < a1->rows(); ++i) {
    for (std::size_t j = 0; j < a1->cols(); ++j) {
      EXPECT_DOUBLE_EQ((*a1)(i, j), (*a2)(i, j));
    }
  }
}

TEST(CrossInterference, GeneratedAlphaFeedsHeatFlowModel) {
  // The generated matrix must produce a solvable heat-flow fixed point.
  auto dc = test::make_tiny_dc({0, 0, 1, 1, 0, 1, 0, 0, 1, 0}, 2);
  std::vector<double> flows;
  for (std::size_t e = 0; e < dc.num_entities(); ++e) {
    flows.push_back(dc.entity_flow(e));
  }
  util::Rng rng(5);
  const auto alpha = generate_cross_interference(dc.layout, flows, rng);
  ASSERT_TRUE(alpha.has_value());
  dc.alpha = *alpha;
  const HeatFlowModel model(dc);
  const auto temps = model.solve({15.0, 15.0}, std::vector<double>(10, 0.5));
  for (double t : temps.node_in) EXPECT_GT(t, 15.0);
}

TEST(CrossInterference, TopNodesRecirculateMoreThanBottomNodes) {
  const auto layout = dc::make_hot_cold_aisle_layout(50, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(11);
  const auto alpha = generate_cross_interference(layout, flows, rng);
  ASSERT_TRUE(alpha.has_value());
  const std::size_t nc = layout.num_cracs;
  double rc_bottom = 0.0, rc_top = 0.0;
  std::size_t n_bottom = 0, n_top = 0;
  for (std::size_t j = 0; j < layout.nodes.size(); ++j) {
    double rc_flow = 0.0;
    for (std::size_t i = 0; i < layout.nodes.size(); ++i) {
      rc_flow += (*alpha)(nc + i, nc + j) * flows[nc + i];
    }
    const double rc = rc_flow / flows[nc + j];
    if (layout.nodes[j].label == dc::RackLabel::A) {
      rc_bottom += rc;
      ++n_bottom;
    } else if (layout.nodes[j].label == dc::RackLabel::E) {
      rc_top += rc;
      ++n_top;
    }
  }
  ASSERT_GT(n_bottom, 0u);
  ASSERT_GT(n_top, 0u);
  EXPECT_GT(rc_top / n_top, rc_bottom / n_bottom);
}

TEST(CrossInterference, VerifyRejectsBadMatrix) {
  const auto layout = dc::make_hot_cold_aisle_layout(10, 1);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(3);
  auto alpha = generate_cross_interference(layout, flows, rng);
  ASSERT_TRUE(alpha.has_value());
  (*alpha)(0, 0) += 0.1;  // breaks the row sum
  EXPECT_FALSE(verify_cross_interference(*alpha, layout, flows).ok);
}

TEST(CrossInterference, PartialRackRequiresRelaxation) {
  // 12 nodes = 2 full racks + {A, B}: the extra bottom labels emit more
  // node-to-node air than the strict RC ranges absorb, so the generator must
  // fall back to a (reported) minimal widening of the Table-II upper bounds.
  const auto layout = dc::make_hot_cold_aisle_layout(12, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(4);
  GenerationInfo info;
  const auto alpha =
      generate_cross_interference(layout, flows, rng, {}, &info);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_GT(info.range_relaxation, 0.0);
  EXPECT_LT(info.range_relaxation, 0.5);
  // Flow conservation stays exact; only the EC/RC ranges were widened.
  const auto strict = verify_cross_interference(*alpha, layout, flows);
  EXPECT_LT(strict.max_outflow_error, 1e-6);
  EXPECT_LT(strict.max_flow_balance_error, 1e-6);
  EXPECT_TRUE(verify_cross_interference(*alpha, layout, flows,
                                        info.range_relaxation + 1e-9)
                  .ok);
}

TEST(CrossInterference, StrictGenerationReportsZeroRelaxation) {
  const auto layout = dc::make_hot_cold_aisle_layout(25, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(6);
  GenerationInfo info;
  const auto alpha =
      generate_cross_interference(layout, flows, rng, {}, &info);
  ASSERT_TRUE(alpha.has_value());
  EXPECT_DOUBLE_EQ(info.range_relaxation, 0.0);
}

TEST(CrossInterference, RelaxationCanBeDisabled) {
  const auto layout = dc::make_hot_cold_aisle_layout(12, 2);
  const auto flows = uniform_flows(layout, 0.07);
  util::Rng rng(4);
  CrossInterferenceOptions options;
  options.allow_range_relaxation = false;
  EXPECT_FALSE(generate_cross_interference(layout, flows, rng, options).has_value());
}

TEST(CrossInterference, VerifyRejectsWrongDimensions) {
  const auto layout = dc::make_hot_cold_aisle_layout(10, 1);
  const auto flows = uniform_flows(layout, 0.07);
  EXPECT_FALSE(verify_cross_interference(solver::Matrix(3, 3), layout, flows).ok);
}

}  // namespace
}  // namespace tapo::thermal
