#include "thermal/heatflow.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dc/crac.h"
#include "testutil.h"

namespace tapo::thermal {
namespace {

using test::make_tiny_dc;

TEST(HeatFlow, NoPowerMeansUniformTemperature) {
  // With zero node power every temperature equals the (single) CRAC setpoint:
  // all inlets are convex combinations of outlets, and nothing adds heat.
  const auto dc = make_tiny_dc({0, 0}, 1);
  const HeatFlowModel model(dc);
  const auto temps = model.solve({18.0}, {0.0, 0.0});
  for (double t : temps.node_in) EXPECT_NEAR(t, 18.0, 1e-9);
  for (double t : temps.node_out) EXPECT_NEAR(t, 18.0, 1e-9);
  for (double t : temps.crac_in) EXPECT_NEAR(t, 18.0, 1e-9);
}

TEST(HeatFlow, NodeOutletFollowsEq4) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  const std::vector<double> power{0.5, 0.3};
  const auto temps = model.solve({15.0}, power);
  for (std::size_t j = 0; j < 2; ++j) {
    const double expected =
        temps.node_in[j] +
        power[j] / (dc::kAirDensity * dc::kAirSpecificHeat * dc.node_flow(j));
    EXPECT_NEAR(temps.node_out[j], expected, 1e-9);
  }
}

TEST(HeatFlow, GlobalEnergyBalance) {
  // In steady state the heat absorbed by all CRACs equals total node power:
  // sum_c rho*Cp*F_c (Tin_c - Tout_c) = sum_j P_j.
  const auto dc = make_tiny_dc({0, 1, 0, 1}, 2);
  const HeatFlowModel model(dc);
  const std::vector<double> power{0.7, 0.2, 0.5, 0.61};
  const auto temps = model.solve({16.0, 17.0}, power);
  double removed = 0.0;
  for (std::size_t c = 0; c < dc.num_cracs(); ++c) {
    removed += dc::kAirDensity * dc::kAirSpecificHeat * dc.cracs[c].flow_m3s *
               (temps.crac_in[c] - temps.crac_out[c]);
  }
  EXPECT_NEAR(removed, 0.7 + 0.2 + 0.5 + 0.61, 1e-8);
}

TEST(HeatFlow, MorePowerRaisesTemperatures) {
  const auto dc = make_tiny_dc({0, 0, 1}, 1);
  const HeatFlowModel model(dc);
  const auto low = model.solve({15.0}, {0.1, 0.1, 0.1});
  const auto high = model.solve({15.0}, {0.6, 0.6, 0.6});
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_GT(high.node_in[j], low.node_in[j]);
    EXPECT_GT(high.node_out[j], low.node_out[j]);
  }
  EXPECT_GT(high.crac_in[0], low.crac_in[0]);
}

TEST(HeatFlow, SetpointShiftsEverythingUniformly) {
  // With alpha fixed, raising all CRAC outlets by d raises every temperature
  // by exactly d (the system is affine with row-stochastic mixing).
  const auto dc = make_tiny_dc({0, 1}, 2);
  const HeatFlowModel model(dc);
  const std::vector<double> power{0.4, 0.4};
  const auto a = model.solve({15.0, 15.0}, power);
  const auto b = model.solve({18.0, 18.0}, power);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(b.node_in[j] - a.node_in[j], 3.0, 1e-9);
    EXPECT_NEAR(b.node_out[j] - a.node_out[j], 3.0, 1e-9);
  }
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(b.crac_in[c] - a.crac_in[c], 3.0, 1e-9);
  }
}

TEST(HeatFlow, LinearizeMatchesSolve) {
  const auto dc = make_tiny_dc({0, 1, 1}, 2);
  const HeatFlowModel model(dc);
  const std::vector<double> crac_out{15.5, 17.0};
  const LinearResponse lr = model.linearize(crac_out);
  const std::vector<double> power{0.3, 0.8, 0.05};
  const auto temps = model.solve(crac_out, power);

  const auto node_in_pred = lr.node_in_coeff.multiply(power);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(lr.node_in0[j] + node_in_pred[j], temps.node_in[j], 1e-9);
  }
  const auto crac_in_pred = lr.crac_in_coeff.multiply(power);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(lr.crac_in0[c] + crac_in_pred[c], temps.crac_in[c], 1e-9);
  }
}

TEST(HeatFlow, LinearResponseCoefficientsNonNegative) {
  // More power anywhere never cools any inlet: (I-G_nn)^-1 = sum G^k >= 0.
  const auto dc = make_tiny_dc({0, 0, 1, 1}, 2);
  const HeatFlowModel model(dc);
  const LinearResponse lr = model.linearize({16.0, 16.0});
  for (std::size_t r = 0; r < lr.node_in_coeff.rows(); ++r) {
    for (std::size_t c = 0; c < lr.node_in_coeff.cols(); ++c) {
      EXPECT_GE(lr.node_in_coeff(r, c), -1e-12);
    }
  }
  for (std::size_t r = 0; r < lr.crac_in_coeff.rows(); ++r) {
    for (std::size_t c = 0; c < lr.crac_in_coeff.cols(); ++c) {
      EXPECT_GE(lr.crac_in_coeff(r, c), -1e-12);
    }
  }
}

TEST(HeatFlow, TotalCracPowerMatchesSpec) {
  const auto dc = make_tiny_dc({0, 1}, 2);
  const HeatFlowModel model(dc);
  const auto temps = model.solve({15.0, 16.0}, {0.79, 0.93});
  double expected = 0.0;
  for (std::size_t c = 0; c < 2; ++c) {
    expected += dc.cracs[c].power_kw(temps.crac_in[c], temps.crac_out[c]);
  }
  EXPECT_DOUBLE_EQ(model.total_crac_power_kw(temps), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(HeatFlow, RedlineCheck) {
  auto dc = make_tiny_dc({0, 0}, 1);
  dc.redline_node_c = 25.0;
  dc.redline_crac_c = 40.0;
  const HeatFlowModel model(dc);
  EXPECT_TRUE(model.within_redlines(model.solve({20.0}, {0.3, 0.3})));
  // A 24.9 degC setpoint plus recirculated heat pushes node inlets past 25.
  EXPECT_FALSE(model.within_redlines(model.solve({24.9}, {0.79, 0.79})));
}

TEST(HeatFlow, RejectsMalformedAlpha) {
  auto dc = make_tiny_dc({0, 0}, 1);
  dc.alpha(0, 0) += 0.5;  // breaks flow balance
  EXPECT_DEATH({ HeatFlowModel model(dc); }, "flow balance");
}

TEST(HeatFlow, HeatingPerKwMatchesNodeFlow) {
  const auto dc = make_tiny_dc({0, 1}, 1);
  const HeatFlowModel model(dc);
  EXPECT_NEAR(model.node_heating_per_kw(0), 1.0 / (1.205 * 0.07), 1e-12);
  EXPECT_NEAR(model.node_heating_per_kw(1), 1.0 / (1.205 * 0.0828), 1e-12);
}

TEST(HeatFlow, ScenarioAlphaProducesFiniteTemperatures) {
  const auto scenario = test::make_small_scenario(3, 12, 2);
  const HeatFlowModel model(scenario.dc);
  std::vector<double> power(scenario.dc.num_nodes(), 0.5);
  const auto temps = model.solve({16.0, 16.0}, power);
  for (double t : temps.node_in) {
    EXPECT_GT(t, 15.0);
    EXPECT_LT(t, 40.0);
  }
}

}  // namespace
}  // namespace tapo::thermal
