#include "util/args.h"

#include <gtest/gtest.h>

namespace tapo::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("tool", "test tool");
  parser.add_flag("verbose", "be chatty");
  parser.add_option("nodes", "node count", "150");
  parser.add_option("psi", "psi percent", "50.0");
  return parser;
}

TEST(Args, DefaultsApplyWithoutArguments) {
  auto parser = make_parser();
  EXPECT_TRUE(parser.parse({}));
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_EQ(parser.option("nodes"), "150");
  EXPECT_EQ(parser.option_int("nodes"), 150);
  EXPECT_DOUBLE_EQ(parser.option_double("psi"), 50.0);
}

TEST(Args, EqualsSyntax) {
  auto parser = make_parser();
  EXPECT_TRUE(parser.parse({"--nodes=40", "--psi=25.5"}));
  EXPECT_EQ(parser.option_int("nodes"), 40);
  EXPECT_DOUBLE_EQ(parser.option_double("psi"), 25.5);
}

TEST(Args, SpaceSyntax) {
  auto parser = make_parser();
  EXPECT_TRUE(parser.parse({"--nodes", "40"}));
  EXPECT_EQ(parser.option_int("nodes"), 40);
}

TEST(Args, FlagSetting) {
  auto parser = make_parser();
  EXPECT_TRUE(parser.parse({"--verbose"}));
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(Args, FlagRejectsValue) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--verbose=yes"}));
  EXPECT_NE(parser.error().find("does not take a value"), std::string::npos);
}

TEST(Args, UnknownArgumentFails) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--bogus"}));
  EXPECT_NE(parser.error().find("unknown"), std::string::npos);
}

TEST(Args, MissingValueFails) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--nodes"}));
  EXPECT_NE(parser.error().find("requires a value"), std::string::npos);
}

TEST(Args, HelpRequested) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--help"}));
  EXPECT_TRUE(parser.help_requested());
}

TEST(Args, PositionalArguments) {
  auto parser = make_parser();
  EXPECT_TRUE(parser.parse({"assign", "--nodes=10", "extra"}));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "assign");
  EXPECT_EQ(parser.positional()[1], "extra");
}

TEST(Args, ArgcArgvInterface) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--nodes=7", "--verbose"};
  EXPECT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.option_int("nodes"), 7);
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(Args, UsageListsEverything) {
  const auto parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("default: 150"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Args, NonNumericOptionAborts) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--nodes=abc"}));
  EXPECT_DEATH(parser.option_int("nodes"), "not an integer");
}

}  // namespace
}  // namespace tapo::util
