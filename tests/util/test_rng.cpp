#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tapo::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(99);
  Rng fork_before = parent.fork(3);
  parent.next_u64();
  parent.next_u64();
  Rng fork_after = parent.fork(3);
  // fork() depends only on (seed, stream id), not on generator state.
  EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(99);
  Rng s0 = parent.fork(0);
  Rng s1 = parent.fork(1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.5, 2.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LE(x, 2.25);
  }
}

TEST(Rng, UniformMeanApproximation) {
  Rng rng(123);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 6));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntUnbiasedish) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 9)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(0.1), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(23);
  const auto p = rng.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += p[i] == i;
  EXPECT_LT(fixed, 10u);  // expected ~1 fixed point
}

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace tapo::util
