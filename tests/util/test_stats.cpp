#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tapo::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  RunningStats s;
  const double data[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : data) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, WelfordIsNumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 0.01);
}

TEST(RunningStats, CiMatchesHandComputation) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // stddev = sqrt(2.5), stderr = sqrt(0.5), t(4, 95%) = 2.776.
  EXPECT_NEAR(s.ci_halfwidth(0.95), 2.776 * std::sqrt(0.5), 1e-9);
}

TEST(RunningStats, CiShrinksWithMoreSamples) {
  RunningStats small, large;
  for (int i = 0; i < 5; ++i) small.add(i % 2);
  for (int i = 0; i < 500; ++i) large.add(i % 2);
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(24, 0.95), 2.064, 1e-3);  // 25 runs, as Fig. 6
  EXPECT_NEAR(student_t_critical(10, 0.99), 3.169, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.90), 1.697, 1e-3);
}

TEST(StudentT, LargeDfApproachesNormal) {
  EXPECT_NEAR(student_t_critical(10000, 0.95), 1.960, 1e-6);
  EXPECT_NEAR(student_t_critical(10000, 0.99), 2.576, 1e-6);
  EXPECT_NEAR(student_t_critical(10000, 0.90), 1.645, 1e-6);
}

TEST(StudentT, MonotoneDecreasingInDf) {
  for (std::size_t df = 1; df < 40; ++df) {
    EXPECT_GE(student_t_critical(df, 0.95), student_t_critical(df + 1, 0.95));
  }
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> data{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 9.0);
}

TEST(Percentile, LinearInterpolation) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

}  // namespace
}  // namespace tapo::util
