#include "util/status.h"

#include <gtest/gtest.h>

namespace tapo::util {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::Infeasible("no feasible setpoint");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.message(), "no feasible setpoint");
  EXPECT_EQ(s.to_string(), "INFEASIBLE: no feasible setpoint");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(status_code_name(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(Status, ResourceExhaustedFactory) {
  const Status s = Status::ResourceExhausted("LP hit the iteration cap");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.to_string(), "RESOURCE_EXHAUSTED: LP hit the iteration cap");
}

TEST(Status, WithContextStacks) {
  const Status s = Status::InvalidArgument("bad token")
                       .with_context("line 4")
                       .with_context("scenario.txt");
  EXPECT_EQ(s.message(), "scenario.txt: line 4: bad token");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Status, WithContextPassesOkThrough) {
  const Status s = Status::Ok().with_context("ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> e(Status::NotFound("missing"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace tapo::util
