#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tapo::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2.5   |"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"a", "b"});
  t.add_row({"x,y", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",2\n");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Fmt, FixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(FmtCi, Format) {
  EXPECT_EQ(fmt_ci(4.25, 1.05, 2), "4.25 ± 1.05");
}

}  // namespace
}  // namespace tapo::util
