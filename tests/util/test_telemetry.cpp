#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/threadpool.h"

namespace tapo::util::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A deliberately tiny recursive-descent JSON reader, enough to round-trip the
// registry's own output (objects, arrays, strings, numbers, null). Living in
// the test keeps the library free of any parsing dependency.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Number, String, Array, Object } kind = Kind::Null;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) {
      ADD_FAILURE() << "missing key '" << key << "'";
      static const JsonValue none;
      return none;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing content after JSON value";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c) {
    skip_ws();
    ASSERT_LT(pos_, text_.size()) << "unexpected end, wanted '" << c << "'";
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 'n': {
        pos_ += 4;  // "null"
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace(key.string, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            // The registry only emits \u00XX for control characters.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            c = static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default: c = esc; break;  // \" \\ \/
        }
      }
      v.string.push_back(c);
    }
    expect('"');
    return v;
  }

  JsonValue number() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------------------
// Counters, gauges, series
// ---------------------------------------------------------------------------

TEST(Telemetry, CounterAccumulatesAndDefaultsToZero) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  reg.count("a");
  reg.count("a", 41);
  reg.count("b", 7);
  EXPECT_EQ(reg.counter_value("a"), 42u);
  EXPECT_EQ(reg.counter_value("b"), 7u);
}

TEST(Telemetry, ConcurrentCounterIncrementsAreExact) {
  // The registry is handed to parallel grid-search lambdas (PR 1 thread
  // pool); every increment must land even under contention on one name.
  Registry reg;
  ThreadPool pool(std::max(4u, std::thread::hardware_concurrency()));
  const std::size_t n = 10000;
  pool.parallel_for(n, [&](std::size_t i) {
    reg.count("shared");
    reg.count("by_parity", i % 2);
    reg.gauge_max("max_index", static_cast<double>(i));
  });
  EXPECT_EQ(reg.counter_value("shared"), n);
  EXPECT_EQ(reg.counter_value("by_parity"), n / 2);
  EXPECT_EQ(reg.gauge_value("max_index"), static_cast<double>(n - 1));
}

TEST(Telemetry, GaugeSetIsLastWriteAndMaxIsRunningMaximum) {
  Registry reg;
  reg.gauge_set("g", 3.0);
  reg.gauge_set("g", -1.5);
  EXPECT_EQ(reg.gauge_value("g"), -1.5);

  reg.gauge_max("m", -2.0);  // first value establishes the maximum
  EXPECT_EQ(reg.gauge_value("m"), -2.0);
  reg.gauge_max("m", 5.0);
  reg.gauge_max("m", 1.0);
  EXPECT_EQ(reg.gauge_value("m"), 5.0);
}

TEST(Telemetry, SeriesKeepsSamplesInInsertionOrder) {
  Registry reg;
  reg.sample("s", 0.0, 1.0);
  reg.sample("s", 10.0, 0.5);
  reg.sample("s", 20.0, 0.25);
  const auto points = reg.series_values("s");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[1].x, 10.0);
  EXPECT_EQ(points[1].value, 0.5);
  EXPECT_TRUE(reg.series_values("absent").empty());
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

TEST(Telemetry, TimerAggregatesCountTotalMax) {
  Registry reg;
  reg.record_duration("t", 0.5);
  reg.record_duration("t", 2.0);
  reg.record_duration("t", 1.0);
  const TimerStats stats = reg.timer_stats("t");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 3.5);
  EXPECT_DOUBLE_EQ(stats.max_seconds, 2.0);
  EXPECT_EQ(reg.timer_stats("absent").count, 0u);
}

TEST(Telemetry, ScopedTimerNestingRecordsIndependentNames) {
  // Nested scopes record to distinct names; the outer interval covers the
  // inner ones, so outer.total >= sum of inner totals.
  Registry reg;
  {
    ScopedTimer outer(&reg, "outer");
    for (int i = 0; i < 3; ++i) {
      ScopedTimer inner(&reg, "inner");
    }
  }
  const TimerStats outer = reg.timer_stats("outer");
  const TimerStats inner = reg.timer_stats("inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 3u);
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(outer.max_seconds, outer.total_seconds - 1e-12);
  EXPECT_GE(inner.max_seconds, inner.total_seconds / 3.0 - 1e-12);
}

TEST(Telemetry, ScopedTimerWithNullRegistryIsInert) {
  ScopedTimer timer(nullptr, "nothing");  // must not crash or record
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Bounded event log
// ---------------------------------------------------------------------------

TEST(Telemetry, EventLogEvictsOldestBeyondCapacity) {
  Registry reg(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    reg.event("e", static_cast<double>(i),
              {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(reg.events_logged(), 10u);  // truncation stays visible
  EXPECT_EQ(reg.events_retained(), 4u);
  const auto events = reg.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {  // the last four survive, in order
    EXPECT_EQ(events[k].t, static_cast<double>(6 + k));
    ASSERT_EQ(events[k].fields.size(), 1u);
    EXPECT_EQ(events[k].fields[0].first, "i");
    EXPECT_EQ(events[k].fields[0].second, static_cast<double>(6 + k));
  }
}

TEST(Telemetry, EventFieldsPreserveOrderAndNames) {
  Registry reg;
  reg.event("sched.assign", 12.5,
            {{"type", 2.0}, {"core", 17.0}, {"exec_seconds", 0.25}});
  const auto events = reg.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "sched.assign");
  ASSERT_EQ(events[0].fields.size(), 3u);
  EXPECT_EQ(events[0].fields[0].first, "type");
  EXPECT_EQ(events[0].fields[1].first, "core");
  EXPECT_EQ(events[0].fields[2].first, "exec_seconds");
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST(Telemetry, JsonRoundTripRecoversEveryMetric) {
  Registry reg(/*max_events=*/8);
  reg.count("c.alpha", 3);
  reg.count("c.beta", 9000000000ull);  // exceeds 2^32: must survive as-is
  reg.gauge_set("g.value", -0.125);
  reg.record_duration("t.solve", 1.5);
  reg.record_duration("t.solve", 0.5);
  reg.sample("s.err", 1.0, 0.75);
  reg.sample("s.err", 2.0, 0.5);
  reg.event("ev \"quoted\"\n", 3.5, {{"k", 7.0}});

  const JsonValue root = parse_json(reg.to_json_string());
  EXPECT_EQ(root.at("schema").string, "tapo-telemetry-v1");

  EXPECT_EQ(root.at("counters").at("c.alpha").number, 3.0);
  EXPECT_EQ(root.at("counters").at("c.beta").number, 9e9);

  EXPECT_EQ(root.at("gauges").at("g.value").number, -0.125);

  const JsonValue& timer = root.at("timers").at("t.solve");
  EXPECT_EQ(timer.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(timer.at("total_seconds").number, 2.0);
  EXPECT_DOUBLE_EQ(timer.at("max_seconds").number, 1.5);

  const JsonValue& series = root.at("series").at("s.err");
  ASSERT_EQ(series.array.size(), 2u);
  ASSERT_EQ(series.array[1].array.size(), 2u);
  EXPECT_EQ(series.array[1].array[0].number, 2.0);
  EXPECT_EQ(series.array[1].array[1].number, 0.5);

  const JsonValue& events = root.at("events");
  EXPECT_EQ(events.at("logged").number, 1.0);
  EXPECT_EQ(events.at("retained").number, 1.0);
  ASSERT_EQ(events.at("records").array.size(), 1u);
  const JsonValue& record = events.at("records").array[0];
  EXPECT_EQ(record.at("name").string, "ev \"quoted\"\n");  // escaping survives
  EXPECT_EQ(record.at("t").number, 3.5);
  EXPECT_EQ(record.at("fields").at("k").number, 7.0);
}

TEST(Telemetry, JsonEmitsSortedKeysAndNullForNonFinite) {
  Registry reg;
  reg.gauge_set("zeta", std::nan(""));
  reg.gauge_set("alpha", 1.0);
  const std::string json = reg.to_json_string();

  // Sorted keys: "alpha" must precede "zeta" in the byte stream.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  // Non-finite doubles serialize as null so the file stays valid JSON.
  const JsonValue root = parse_json(json);
  EXPECT_EQ(root.at("gauges").at("zeta").kind, JsonValue::Kind::Null);
}

TEST(Telemetry, EmptyRegistrySerializesToValidSkeleton) {
  Registry reg;
  const JsonValue root = parse_json(reg.to_json_string());
  EXPECT_EQ(root.at("schema").string, "tapo-telemetry-v1");
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("timers").object.empty());
  EXPECT_TRUE(root.at("series").object.empty());
  EXPECT_EQ(root.at("events").at("logged").number, 0.0);
}

TEST(Telemetry, ConcurrentMixedRecordingThenSerializeIsConsistent) {
  // Writers on every metric kind racing with a serializer must never tear:
  // each to_json_string() call sees one consistent snapshot.
  Registry reg(64);
  ThreadPool pool(4);
  pool.parallel_for(2000, [&](std::size_t i) {
    switch (i % 5) {
      case 0: reg.count("mixed"); break;
      case 1: reg.gauge_max("mixed.max", static_cast<double>(i)); break;
      case 2: reg.record_duration("mixed.t", 1e-6); break;
      case 3: reg.sample("mixed.s", static_cast<double>(i), 1.0); break;
      default: reg.event("mixed.e", static_cast<double>(i)); break;
    }
    if (i % 97 == 0) {
      const JsonValue root = parse_json(reg.to_json_string());
      EXPECT_EQ(root.at("schema").string, "tapo-telemetry-v1");
    }
  });
  EXPECT_EQ(reg.counter_value("mixed"), 400u);
  EXPECT_EQ(reg.timer_stats("mixed.t").count, 400u);
  EXPECT_EQ(reg.series_values("mixed.s").size(), 400u);
  EXPECT_EQ(reg.events_logged(), 400u);
  EXPECT_EQ(reg.events_retained(), 64u);
}

}  // namespace
}  // namespace tapo::util::telemetry
