#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tapo::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SlotWritesNeedNoSynchronization) {
  // The intended usage pattern: each task writes only its own slot, and the
  // caller reduces after parallel_for returns.
  ThreadPool pool(8);
  const std::size_t n = 257;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = static_cast<double>(i); });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_EQ(sum, static_cast<double>(n * (n - 1) / 2));
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EmptyAndSingletonBatches) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t) { ++calls; });  // runs inline
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDraining) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every non-throwing task still ran; the pool is usable afterwards.
  EXPECT_EQ(completed.load(), 63u);
  std::atomic<std::size_t> after{0};
  pool.parallel_for(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8u);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace tapo::util
