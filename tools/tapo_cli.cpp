// tapo command-line driver.
//
// Generates a Section-VI scenario from a seed and runs the requested stage
// of the pipeline against it:
//
//   tapo_cli bounds   [--nodes --cracs --seed ...]   Pmin/Pmax/Pconst
//   tapo_cli assign   [... --psi --technique]        first-step assignment
//   tapo_cli simulate [... --duration]               assignment + online DES
//   tapo_cli powermin [... --target-fraction]        power-min extension
//   tapo_cli sweep    [... --points]                 reward vs budget sweep
//
// simulate additionally accepts --faults <file> (a "tapo-faults v1"
// schedule, see docs/RESILIENCE.md): faults are injected mid-run and the
// two-phase recovery controller re-plans online. --rate-trace <file> drives
// time-varying arrivals from a "tapo-traces v1" curve, and
// --replan-cadence <s> (with --replan-threshold) turns on the
// receding-horizon re-planner that tracks the drift (core/replanner.h).
//
// --csv switches the tabular output to CSV for downstream plotting.
// --telemetry-out <file>.json archives the run's metrics registry (schema
// "tapo-telemetry-v1", catalog in docs/OBSERVABILITY.md) after the
// subcommand finishes.
//
// Exit codes: 0 success, 1 infeasible/unsolvable instance, 2 bad input
// (malformed scenario or fault file, unknown flags).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>

#include "core/assigner.h"
#include "core/baseline.h"
#include "core/powermin.h"
#include "scenario/generator.h"
#include "scenario/io.h"
#include "sim/des.h"
#include "sim/trace.h"
#include "thermal/heatflow.h"
#include "util/args.h"
#include "util/table.h"
#include "util/telemetry.h"

namespace {

using namespace tapo;

// Set by main when --telemetry-out is given; null disables recording.
util::telemetry::Registry* g_telemetry = nullptr;

void print_table(const util::Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

std::optional<scenario::Scenario> make_scenario(const util::ArgParser& args) {
  std::optional<scenario::Scenario> scenario;
  if (const std::string& path = args.option("load"); !path.empty()) {
    // An archived instance: the data center is complete; bounds stay unset
    // except for subcommands that recompute them.
    scenario::LoadResult loaded = scenario::load_data_center_file(path);
    if (!loaded.ok) {
      std::fprintf(stderr, "error: %s\n", loaded.status.to_string().c_str());
      return std::nullopt;
    }
    scenario.emplace();
    scenario->dc = std::move(loaded.dc);
    const thermal::HeatFlowModel model(scenario->dc);
    scenario->bounds = thermal::compute_power_bounds(scenario->dc, model);
  } else {
    scenario::ScenarioConfig config;
    config.num_nodes = static_cast<std::size_t>(args.option_int("nodes"));
    config.num_cracs = static_cast<std::size_t>(args.option_int("cracs"));
    config.num_task_types = static_cast<std::size_t>(args.option_int("task-types"));
    config.static_fraction = args.option_double("static-fraction");
    config.v_prop = args.option_double("vprop");
    config.pconst_factor = args.option_double("pconst-factor");
    config.seed = static_cast<std::uint64_t>(args.option_int("seed"));
    scenario = scenario::generate_scenario(config);
    if (!scenario) std::fprintf(stderr, "error: scenario generation failed\n");
  }
  if (scenario) {
    if (const std::string& path = args.option("save"); !path.empty()) {
      if (!scenario::save_data_center_file(scenario->dc, path)) {
        std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
        return std::nullopt;
      }
      std::fprintf(stderr, "saved data center to %s\n", path.c_str());
    }
  }
  return scenario;
}

core::Assignment run_technique(const dc::DataCenter& dc,
                               const thermal::HeatFlowModel& model,
                               const std::string& technique, double psi) {
  if (technique == "baseline") {
    return core::BaselineAssigner(dc, model).assign();
  }
  core::ThreeStageOptions options;
  options.stage1.psi = psi;
  options.stage1.telemetry = g_telemetry;
  if (technique == "three-stage") {
    return core::ThreeStageAssigner(dc, model).assign(options);
  }
  if (technique == "best") {
    core::ThreeStageOptions o25 = options, o50 = options;
    o25.stage1.psi = 25.0;
    o50.stage1.psi = 50.0;
    const core::ThreeStageAssigner assigner(dc, model);
    return core::best_of({assigner.assign(o25), assigner.assign(o50)});
  }
  std::fprintf(stderr, "error: unknown --technique '%s' (three-stage, baseline, best)\n",
               technique.c_str());
  return {};
}

int cmd_bounds(const util::ArgParser& args) {
  const auto scenario = make_scenario(args);
  if (!scenario) return 2;
  util::Table table({"Pmin (kW)", "Pmax (kW)", "Pconst (kW)", "nodes", "cores"});
  table.add_row({util::fmt(scenario->bounds.pmin_kw, 2),
                 util::fmt(scenario->bounds.pmax_kw, 2),
                 util::fmt(scenario->dc.p_const_kw, 2),
                 std::to_string(scenario->dc.num_nodes()),
                 std::to_string(scenario->dc.total_cores())});
  print_table(table, args.flag("csv"));
  return 0;
}

int cmd_assign(const util::ArgParser& args) {
  const auto scenario = make_scenario(args);
  if (!scenario) return 2;
  const thermal::HeatFlowModel model(scenario->dc);
  const core::Assignment a = run_technique(scenario->dc, model,
                                           args.option("technique"),
                                           args.option_double("psi"));
  if (!a.feasible) {
    std::fprintf(stderr, "error: assignment infeasible\n");
    return 1;
  }
  const auto check = core::verify_assignment(scenario->dc, model, a);
  util::Table table({"technique", "reward rate", "total kW", "budget kW",
                     "max node inlet C", "constraints"});
  table.add_row({a.technique, util::fmt(a.reward_rate, 3),
                 util::fmt(a.total_power_kw(), 2),
                 util::fmt(scenario->dc.p_const_kw, 2),
                 util::fmt(check.max_node_inlet_c, 2),
                 check.ok() ? "OK" : "VIOLATED"});
  print_table(table, args.flag("csv"));

  if (args.flag("pstates")) {
    util::Table detail({"node", "type", "P0", "P1", "P2", "P3", "off",
                        "power kW", "inlet C"});
    const auto node_power = scenario->dc.node_power_from_pstates(a.core_pstate);
    for (std::size_t j = 0; j < scenario->dc.num_nodes(); ++j) {
      const auto& spec = scenario->dc.node_type(j);
      std::vector<std::size_t> hist(spec.off_state() + 1, 0);
      for (std::size_t c = 0; c < spec.cores_per_node(); ++c) {
        ++hist[a.core_pstate[scenario->dc.core_offset(j) + c]];
      }
      detail.add_row({std::to_string(j), spec.name().substr(0, 3),
                      std::to_string(hist[0]), std::to_string(hist[1]),
                      std::to_string(hist[2]), std::to_string(hist[3]),
                      std::to_string(hist[4]), util::fmt(node_power[j], 3),
                      util::fmt(a.temps.node_in[j], 2)});
    }
    print_table(detail, args.flag("csv"));
  }
  return 0;
}

int cmd_simulate(const util::ArgParser& args) {
  auto scenario = make_scenario(args);  // non-const: fault runs mutate the dc
  if (!scenario) return 2;
  const thermal::HeatFlowModel model(scenario->dc);
  const core::Assignment a = run_technique(scenario->dc, model,
                                           args.option("technique"),
                                           args.option_double("psi"));
  if (!a.feasible) {
    std::fprintf(stderr, "error: assignment infeasible\n");
    return 1;
  }
  sim::SimOptions options;
  options.duration_seconds = args.option_double("duration");
  options.warmup_seconds = options.duration_seconds * 0.1;
  options.seed = static_cast<std::uint64_t>(args.option_int("seed")) + 1;
  options.telemetry = g_telemetry;

  // Optional time-varying arrivals ("tapo-traces v1"); must outlive the run.
  std::optional<sim::RateTrace> rate_trace;
  if (const std::string& trace_path = args.option("rate-trace");
      !trace_path.empty()) {
    util::StatusOr<sim::RateTrace> loaded =
        sim::load_rate_trace_file(trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().to_string().c_str());
      return 2;
    }
    rate_trace = std::move(*loaded);
    options.rate_trace = &*rate_trace;
  }

  const std::string& faults_path = args.option("faults");
  const double replan_cadence = args.option_double("replan-cadence");
  if (!faults_path.empty() || replan_cadence > 0.0) {
    sim::FaultSchedule schedule;
    if (!faults_path.empty()) {
      util::StatusOr<sim::FaultSchedule> loaded =
          sim::load_fault_schedule_file(faults_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().to_string().c_str());
        return 2;
      }
      schedule = std::move(*loaded);
    }
    sim::FaultSimOptions fault_options;
    fault_options.sim = options;
    fault_options.recovery.assign.stage1.telemetry = g_telemetry;
    fault_options.recovery.replan_delay_s = args.option_double("replan-delay");
    if (replan_cadence > 0.0) {
      core::ReplannerOptions replan;
      replan.cadence_s = replan_cadence;
      replan.tracking_error_threshold = args.option_double("replan-threshold");
      replan.telemetry = g_telemetry;
      fault_options.replan = replan;
    }
    const sim::FaultSimResult result = sim::simulate_with_faults(
        scenario->dc, model, a, schedule, fault_options);
    if (!result.status.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status.to_string().c_str());
      return 2;
    }
    util::Table table({"faults", "replans adopted", "horizon steps",
                       "horizon adoptions", "predicted reward/s",
                       "achieved reward/s", "drop %", "energy kWh"});
    table.add_row({std::to_string(result.faults.size()),
                   std::to_string(result.replans_adopted),
                   std::to_string(result.horizon_steps),
                   std::to_string(result.horizon_adoptions),
                   util::fmt(a.reward_rate, 3),
                   util::fmt(result.sim.reward_rate, 3),
                   util::fmt(100.0 * result.sim.drop_fraction(), 1),
                   util::fmt(result.sim.energy_kwh, 3)});
    print_table(table, args.flag("csv"));
    util::Table detail({"time s", "fault", "safe", "replanned",
                        "throttle reward/s", "replan reward/s", "killed"});
    for (const sim::FaultRecord& r : result.faults) {
      detail.add_row({util::fmt(r.event.time_s, 1),
                      sim::fault_kind_name(r.event.kind),
                      r.safe ? "yes" : "NO", r.replan_adopted ? "yes" : "no",
                      util::fmt(r.throttle_reward_rate, 3),
                      util::fmt(r.replan_reward_rate, 3),
                      std::to_string(r.tasks_killed)});
    }
    print_table(detail, args.flag("csv"));
    return 0;
  }

  const sim::SimResult result = sim::simulate(scenario->dc, a, options);
  if (!result.status.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status.to_string().c_str());
    return 2;
  }
  util::Table table({"predicted reward/s", "achieved reward/s", "ratio",
                     "drop %", "tracking error"});
  table.add_row({util::fmt(a.reward_rate, 3), util::fmt(result.reward_rate, 3),
                 util::fmt(result.reward_rate / a.reward_rate, 3),
                 util::fmt(100.0 * result.drop_fraction(), 1),
                 util::fmt(result.mean_tracking_error, 4)});
  print_table(table, args.flag("csv"));
  return 0;
}

int cmd_powermin(const util::ArgParser& args) {
  const auto scenario = make_scenario(args);
  if (!scenario) return 2;
  const thermal::HeatFlowModel model(scenario->dc);
  const core::ThreeStageAssigner assigner(scenario->dc, model);
  core::ThreeStageOptions reference_options;
  reference_options.stage1.telemetry = g_telemetry;
  const core::Assignment reference = assigner.assign(reference_options);
  if (!reference.feasible) {
    std::fprintf(stderr, "error: reference assignment infeasible\n");
    return 1;
  }
  const double target =
      args.option_double("target-fraction") * reference.reward_rate;
  core::PowerMinOptions pm_options;
  pm_options.stage1.telemetry = g_telemetry;
  const auto result =
      core::minimize_power_for_reward(scenario->dc, model, target, pm_options);
  if (!result.feasible) {
    std::fprintf(stderr, "error: target unreachable\n");
    return 1;
  }
  util::Table table({"target reward/s", "achieved reward/s", "total kW",
                     "reference kW", "met"});
  table.add_row({util::fmt(target, 3), util::fmt(result.reward_rate, 3),
                 util::fmt(result.total_power_kw, 2),
                 util::fmt(reference.total_power_kw(), 2),
                 result.met_target ? "yes" : "no"});
  print_table(table, args.flag("csv"));
  return 0;
}

int cmd_trace(const util::ArgParser& args) {
  const auto scenario = make_scenario(args);
  if (!scenario) return 2;
  const double horizon = args.option_double("duration");
  const auto seed = static_cast<std::uint64_t>(args.option_int("seed"));

  sim::Trace trace;
  if (const std::string& path = args.option("trace-in"); !path.empty()) {
    auto loaded = sim::load_trace_csv(path, scenario->dc.num_task_types());
    if (!loaded) {
      std::fprintf(stderr, "error: cannot load trace '%s'\n", path.c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else if (args.option_double("burst-multiplier") > 1.0) {
    sim::MmppConfig config;
    config.burst_multiplier = args.option_double("burst-multiplier");
    trace = sim::generate_mmpp_trace(scenario->dc.task_types, horizon, config,
                                     util::Rng(seed + 2));
  } else {
    trace = sim::generate_poisson_trace(scenario->dc.task_types, horizon,
                                        util::Rng(seed + 2));
  }
  if (const std::string& path = args.option("trace-out"); !path.empty()) {
    if (!sim::save_trace_csv(trace, path)) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "saved %zu arrivals to %s\n", trace.size(), path.c_str());
  }

  const thermal::HeatFlowModel model(scenario->dc);
  const core::Assignment a = run_technique(scenario->dc, model,
                                           args.option("technique"),
                                           args.option_double("psi"));
  if (!a.feasible) {
    std::fprintf(stderr, "error: assignment infeasible\n");
    return 1;
  }
  sim::SimOptions options;
  options.duration_seconds = horizon;
  options.warmup_seconds = horizon * 0.1;
  options.telemetry = g_telemetry;
  const sim::SimResult result =
      sim::simulate_trace(scenario->dc, a, trace, options);
  util::Table table({"arrivals", "predicted reward/s", "achieved reward/s",
                     "ratio", "drop %"});
  table.add_row({std::to_string(trace.size()), util::fmt(a.reward_rate, 3),
                 util::fmt(result.reward_rate, 3),
                 util::fmt(result.reward_rate / a.reward_rate, 3),
                 util::fmt(100.0 * result.drop_fraction(), 1)});
  print_table(table, args.flag("csv"));
  return 0;
}

int cmd_sweep(const util::ArgParser& args) {
  auto scenario = make_scenario(args);
  if (!scenario) return 2;
  const thermal::HeatFlowModel model(scenario->dc);
  const auto points = static_cast<std::size_t>(args.option_int("points"));
  util::Table table({"budget factor", "Pconst kW", "three-stage", "baseline",
                     "improvement %"});
  for (std::size_t p = 0; p < points; ++p) {
    const double factor =
        0.15 + 0.75 * static_cast<double>(p) / static_cast<double>(points - 1);
    scenario->dc.p_const_kw =
        thermal::pconst_from_bounds(scenario->bounds, factor);
    const core::Assignment a =
        run_technique(scenario->dc, model, "best", 50.0);
    const core::Assignment b =
        run_technique(scenario->dc, model, "baseline", 50.0);
    if (!a.feasible || !b.feasible) continue;
    table.add_row({util::fmt(factor, 3), util::fmt(scenario->dc.p_const_kw, 1),
                   util::fmt(a.reward_rate, 2), util::fmt(b.reward_rate, 2),
                   util::fmt(100.0 * (a.reward_rate - b.reward_rate) /
                                 b.reward_rate, 2)});
  }
  print_table(table, args.flag("csv"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "tapo_cli",
      "thermal-aware data-center assignment driver (IPDPSW'12 reproduction); "
      "subcommands: bounds | assign | simulate | powermin | sweep | trace");
  args.add_option("nodes", "number of compute nodes", "40");
  args.add_option("cracs", "number of CRAC units", "2");
  args.add_option("task-types", "number of task types", "8");
  args.add_option("seed", "scenario seed", "1");
  args.add_option("static-fraction", "P-state-0 static power share", "0.3");
  args.add_option("vprop", "ECS frequency-proportionality noise", "0.1");
  args.add_option("pconst-factor", "budget position between Pmin and Pmax", "0.5");
  args.add_option("technique", "three-stage | baseline | best", "three-stage");
  args.add_option("psi", "best-psi-percent of task types for ARR", "50");
  args.add_option("duration", "simulated seconds (simulate)", "120");
  args.add_option("faults", "inject this tapo-faults v1 schedule (simulate)", "");
  args.add_option("replan-delay",
                  "seconds between a fault and re-plan adoption (simulate)", "10");
  args.add_option("rate-trace",
                  "drive arrivals from this tapo-traces v1 file (simulate)", "");
  args.add_option("replan-cadence",
                  "receding-horizon re-plan period in seconds; 0 = off "
                  "(simulate)", "0");
  args.add_option("replan-threshold",
                  "tracking-error trigger for early re-plans; 0 disables "
                  "(simulate)", "0.5");
  args.add_option("target-fraction", "reward floor vs reference (powermin)", "0.8");
  args.add_option("points", "sweep points (sweep)", "6");
  args.add_option("save", "archive the generated data center to this file", "");
  args.add_option("load", "load an archived data center instead of generating", "");
  args.add_option("trace-in", "replay this arrival trace CSV (trace)", "");
  args.add_option("trace-out", "save the generated arrival trace CSV (trace)", "");
  args.add_option("burst-multiplier", "MMPP burst multiplier; 1 = Poisson (trace)", "1");
  args.add_option("telemetry-out",
                  "write the run's metrics registry to this JSON file", "");
  args.add_flag("csv", "emit CSV instead of aligned tables");
  args.add_flag("pstates", "also print the per-node P-state histogram (assign)");

  if (!args.parse(argc, argv)) {
    if (!args.error().empty()) std::fprintf(stderr, "error: %s\n", args.error().c_str());
    std::fputs(args.usage().c_str(), args.help_requested() ? stdout : stderr);
    return args.help_requested() ? 0 : 2;
  }
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "error: expected exactly one subcommand\n%s",
                 args.usage().c_str());
    return 2;
  }
  const std::string& command = args.positional()[0];
  util::telemetry::Registry registry;
  const std::string& telemetry_path = args.option("telemetry-out");
  if (!telemetry_path.empty()) g_telemetry = &registry;

  int status = 2;
  bool known = true;
  {
    // The cli.<command> timer wraps the whole subcommand (scenario
    // generation included), so stage timers can be read as fractions of it.
    // ScopedTimer keeps only a view of the name, so it must outlive it.
    const std::string timer_name = "cli." + command;
    const util::telemetry::ScopedTimer timer(g_telemetry, timer_name);
    if (command == "bounds") status = cmd_bounds(args);
    else if (command == "assign") status = cmd_assign(args);
    else if (command == "simulate") status = cmd_simulate(args);
    else if (command == "powermin") status = cmd_powermin(args);
    else if (command == "sweep") status = cmd_sweep(args);
    else if (command == "trace") status = cmd_trace(args);
    else known = false;
  }
  if (!known) {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", command.c_str());
    return 2;
  }
  if (g_telemetry) {
    std::ofstream out(telemetry_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", telemetry_path.c_str());
      return 1;
    }
    registry.to_json(out);
    std::fprintf(stderr, "wrote telemetry to %s\n", telemetry_path.c_str());
  }
  return status;
}
