// tapo_soak: fleet soak runner over a declarative scenario suite.
//
//   tapo_soak --suite scenarios/ -j8 [--out dir] [--cache dir]
//       Load every *.tapo profile in the suite directory, execute the
//       misses in parallel (cache hits by content hash are skipped), run
//       the telemetry anomaly pass, and print the "tapo-soak-suite-v1"
//       report to stdout (or --report <file>).
//
//   tapo_soak --gen 10 --gen-seed 7 --gen-out generated/
//       Emit seeded random profiles in the same "tapo-scenarios v1" format
//       (they can then be soaked like any committed profile).
//
//   tapo_soak --check telemetry.json
//       Re-run the anomaly pass over an archived "tapo-telemetry-v1" file.
//
// Filters for CI smoke runs: --filter <substring> keeps matching profile
// names only; --max-nodes N skips larger instances.
//
// Exit codes: 0 all pass, 1 at least one scenario failed (anomaly fired,
// feasibility mismatch, or sim error), 2 bad input (unreadable suite,
// malformed profile, unknown flags).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/profile.h"
#include "soak/anomaly.h"
#include "soak/runner.h"
#include "util/args.h"
#include "util/telemetry_read.h"

namespace {

using namespace tapo;

int run_generate(const util::ArgParser& args) {
  scenario::ProfileGenConfig config;
  config.count = static_cast<std::size_t>(args.option_int("gen"));
  config.seed = static_cast<std::uint64_t>(args.option_int("gen-seed"));
  config.max_nodes = static_cast<std::size_t>(args.option_int("gen-max-nodes"));
  const std::string out = args.option("gen-out");
  if (out.empty()) {
    std::cerr << "error: --gen requires --gen-out <dir>\n";
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out, ec);
  if (ec) {
    std::cerr << "error: cannot create '" << out << "': " << ec.message()
              << "\n";
    return 2;
  }
  const std::vector<scenario::ScenarioProfile> profiles =
      scenario::generate_random_profiles(config);
  for (const scenario::ScenarioProfile& profile : profiles) {
    const std::string path = out + "/" + profile.name + ".tapo";
    if (!scenario::save_profile_file(profile, path)) {
      std::cerr << "error: cannot write '" << path << "'\n";
      return 2;
    }
  }
  std::cout << "wrote " << profiles.size() << " profiles to " << out << "\n";
  return 0;
}

int run_check(const std::string& path) {
  util::StatusOr<util::telemetry::Snapshot> snapshot =
      util::telemetry::read_snapshot_file(path);
  if (!snapshot.ok()) {
    std::cerr << "error: " << snapshot.status().to_string() << "\n";
    return 2;
  }
  const std::vector<soak::Anomaly> anomalies = soak::detect_anomalies(*snapshot);
  for (const soak::Anomaly& a : anomalies) {
    std::cout << "ANOMALY [" << a.detector << "] " << a.detail << "\n";
  }
  if (anomalies.empty()) {
    std::cout << "ok: no anomalies in " << path << "\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("tapo_soak",
                       "fleet soak runner over a declarative scenario suite");
  args.add_option("suite", "directory of *.tapo scenario profiles", "");
  args.add_option("jobs", 'j', "worker threads across scenarios (0 = all)",
                  "0");
  args.add_option("out", "directory for per-scenario telemetry artifacts", "");
  args.add_option("cache", "report cache directory (skip unchanged entries)",
                  "");
  args.add_option("report", "write the suite report here instead of stdout",
                  "");
  args.add_option("filter", "keep only profiles whose name contains this", "");
  args.add_option("max-nodes", "skip profiles with more nodes than this", "0");
  args.add_flag("plan-only", "skip the DES phase (feasibility only)");
  args.add_flag("list", "list selected profiles and hashes, do not run");
  args.add_option("check", "anomaly-check an archived telemetry JSON file", "");
  args.add_option("gen", "emit this many seeded random profiles and exit", "0");
  args.add_option("gen-seed", "random-profile generator seed", "1");
  args.add_option("gen-max-nodes", "random-profile node-count ceiling", "600");
  args.add_option("gen-out", "directory for generated profiles", "");
  if (!args.parse(argc, argv)) {
    if (args.help_requested()) {
      std::cout << args.usage();
      return 0;
    }
    std::cerr << "error: " << args.error() << "\n" << args.usage();
    return 2;
  }

  if (args.option_int("gen") > 0) return run_generate(args);
  if (!args.option("check").empty()) return run_check(args.option("check"));

  const std::string suite = args.option("suite");
  if (suite.empty()) {
    std::cerr << "error: --suite <dir> is required (or --gen / --check)\n"
              << args.usage();
    return 2;
  }
  util::StatusOr<std::vector<scenario::ScenarioProfile>> loaded =
      scenario::load_profile_dir(suite);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().to_string() << "\n";
    return 2;
  }
  std::vector<scenario::ScenarioProfile> profiles = std::move(*loaded);

  const std::string filter = args.option("filter");
  const std::int64_t max_nodes = args.option_int("max-nodes");
  std::vector<scenario::ScenarioProfile> selected;
  for (scenario::ScenarioProfile& profile : profiles) {
    if (!filter.empty() && profile.name.find(filter) == std::string::npos) {
      continue;
    }
    if (max_nodes > 0 &&
        profile.nodes > static_cast<std::size_t>(max_nodes)) {
      continue;
    }
    selected.push_back(std::move(profile));
  }
  if (selected.empty()) {
    std::cerr << "error: no profiles selected from '" << suite << "'\n";
    return 2;
  }

  if (args.flag("list")) {
    for (const scenario::ScenarioProfile& profile : selected) {
      std::printf("%016llx  %s  (%zu nodes, %zu cracs)\n",
                  static_cast<unsigned long long>(
                      scenario::profile_hash(profile)),
                  profile.name.c_str(), profile.nodes, profile.cracs);
    }
    return 0;
  }

  soak::SoakOptions options;
  options.threads = static_cast<std::size_t>(args.option_int("jobs"));
  options.out_dir = args.option("out");
  options.cache_dir = args.option("cache");
  options.run_sim = !args.flag("plan-only");
  const soak::SoakResult result = soak::run_suite(selected, options);
  if (!result.status.ok()) {
    std::cerr << "error: " << result.status.to_string() << "\n";
    return 2;
  }

  for (const soak::ScenarioOutcome& outcome : result.outcomes) {
    std::fprintf(stderr, "%-6s %s%s\n", outcome.pass ? "pass" : "FAIL",
                 outcome.name.c_str(), outcome.from_cache ? " (cached)" : "");
  }
  std::fprintf(stderr, "%zu executed, %zu cached, %zu failed\n",
               result.executed, result.cached, result.failed);

  const std::string report_path = args.option("report");
  if (report_path.empty()) {
    soak::write_suite_report(result, std::cout);
  } else {
    std::ofstream os(report_path);
    if (!os) {
      std::cerr << "error: cannot write '" << report_path << "'\n";
      return 2;
    }
    soak::write_suite_report(result, os);
  }
  return result.pass() ? 0 : 1;
}
